// Batched accumulation kernels for the TGM candidate-generation pass.
//
// The hot loop of a query adds a per-token weight into a group-counter
// array for every group present in that token's bitmap column (Equation
// 2/4). Walking each column bit-by-bit through ForEach wastes the
// container structure Roaring maintains; GroupCountAccumulator instead
// lets each container kind use its natural batch shape:
//
//   - array containers bulk-add into the counter array,
//   - bitset containers scan words and add per set bit (no per-value
//     callback, no re-derived base offsets),
//   - run containers record (start, end, weight) into a difference array
//     in O(1) per run; one prefix-sum pass at Finish() folds every run of
//     every column into the counters at once.
//
// The difference array uses unsigned wrap-around arithmetic: the prefix
// sums are exact modulo 2^32 and every true counter fits in uint32, so the
// folded values are exact.

#ifndef LES3_BITMAP_KERNELS_H_
#define LES3_BITMAP_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitmap/kernels_simd.h"
#include "core/simd_dispatch.h"

namespace les3 {
namespace bitmap {

/// \brief Scalar word-scan accumulation kernel: one ctz + clear-lowest per
/// set bit. Exported for the forced-path differential tests; production
/// code calls the dispatching AccumulateWords below.
inline void AccumulateWordsScalar(const uint64_t* words, size_t num_words,
                                  uint32_t base, uint32_t* counts,
                                  uint32_t weight) {
  for (size_t w = 0; w < num_words; ++w) {
    if (words[w] != 0) {
      AccumulateWordBits(words[w], base + (static_cast<uint32_t>(w) << 6),
                         counts, weight);
    }
  }
}

/// \brief Word-scan accumulation kernel shared by the dense BitVector and
/// the Roaring bitset container: adds `weight` to `counts[base + i]` for
/// every set bit i of `words[0 .. num_words)`. One pass over the words,
/// direct adds, no per-value callback. Dispatches on the active SIMD level
/// (core/simd_dispatch.h); `counts_size` is the number of addressable
/// entries of `counts` — the vector kernels read-modify-write the full
/// 64-counter span of a dense word and need to know where the array ends
/// (words whose span crosses it take the per-bit path, so results are
/// identical at every level).
inline void AccumulateWords(const uint64_t* words, size_t num_words,
                            uint32_t base, uint32_t* counts, uint32_t weight,
                            size_t counts_size) {
  switch (simd::ActiveLevel()) {
    case simd::Level::kAvx512:
      AccumulateWordsAvx512(words, num_words, base, counts, weight,
                            counts_size);
      return;
    case simd::Level::kAvx2:
      AccumulateWordsAvx2(words, num_words, base, counts, weight,
                          counts_size);
      return;
    case simd::Level::kScalar:
      break;
  }
  AccumulateWordsScalar(words, num_words, base, counts, weight);
}

/// \brief Bulk-add for a sorted, duplicate-free array of 16-bit offsets
/// (the Roaring array-container shape): adds `weight` to counts[base + v]
/// for every value. AVX-512 uses gather/scatter; the other levels run the
/// scalar loop (AVX2 has no scatter).
inline void ArrayAccumulate(const uint16_t* values, size_t n, uint32_t base,
                            uint32_t* counts, uint32_t weight) {
  if (simd::ActiveLevel() == simd::Level::kAvx512) {
    ArrayAccumulateAvx512(values, n, base, counts, weight);
    return;
  }
  for (size_t i = 0; i < n; ++i) counts[base + values[i]] += weight;
}

/// \brief Weighted group-counter array with an O(1)-per-run side channel.
///
/// Usage: construct (or Reset) over the target counter vector, stream any
/// number of columns through the AccumulateInto kernels, then call
/// Finish() exactly once before reading the counters.
class GroupCountAccumulator {
 public:
  /// An unbound accumulator; call Reset before use. Default-constructible
  /// so call sites can keep one thread_local instance and amortize the
  /// difference-array allocation across queries.
  GroupCountAccumulator() = default;

  /// Binds the accumulator to `counts`, resizing it to `num_groups` zeros.
  /// `counts` must outlive the accumulator.
  GroupCountAccumulator(uint32_t num_groups, std::vector<uint32_t>* counts) {
    Reset(num_groups, counts);
  }

  void Reset(uint32_t num_groups, std::vector<uint32_t>* counts) {
    counts_ = counts;
    counts_->assign(num_groups, 0);
    // The difference array is kept all-zero between uses (Finish re-zeroes
    // the entries it folds), so resets normally never re-clear it. A prior
    // binding abandoned after AddRange without Finish() would leak its
    // deltas into this use, so discard any it left behind.
    if (has_ranges_) std::fill(diff_.begin(), diff_.end(), 0);
    if (diff_.size() < static_cast<size_t>(num_groups) + 1) {
      diff_.resize(static_cast<size_t>(num_groups) + 1, 0);
    }
    num_groups_ = num_groups;
    has_ranges_ = false;
  }

  uint32_t num_groups() const { return num_groups_; }

  /// Direct per-group adds (array and bitset kernels write here).
  uint32_t* counts() { return counts_->data(); }

  /// Adds `weight` to every group in [first, last] inclusive, in O(1).
  void AddRange(uint32_t first, uint32_t last, uint32_t weight) {
    diff_[first] += weight;
    diff_[last + 1] -= weight;  // unsigned wrap-around is intentional
    has_ranges_ = true;
  }

  /// Folds the pending ranges into the counter array, re-zeroing the
  /// difference array as it goes. Call once per Reset, before reading the
  /// counters.
  void Finish() {
    if (!has_ranges_) return;
    uint32_t running = 0;
    uint32_t* c = counts_->data();
    for (uint32_t g = 0; g < num_groups_; ++g) {
      running += diff_[g];
      diff_[g] = 0;
      c[g] += running;
    }
    diff_[num_groups_] = 0;  // AddRange(.., num_groups - 1, ..) writes here
    has_ranges_ = false;
  }

 private:
  std::vector<uint32_t>* counts_ = nullptr;
  std::vector<uint32_t> diff_;  // num_groups + 1 entries
  uint32_t num_groups_ = 0;
  bool has_ranges_ = false;
};

/// \brief One subscriber of a shared column walk: query row `query` wants
/// this column's groups added with weight `weight` (the query's token
/// multiplicity).
struct QueryWeight {
  uint32_t query;
  uint32_t weight;
};

/// \brief Q-row variant of GroupCountAccumulator for batched probes.
///
/// Binds a row-major Q x num_groups counter matrix; each row follows the
/// single-query accumulator's semantics exactly (same kernels, same
/// difference-array fold), so row q of a batch equals what a solo
/// GroupCountAccumulator run over query q's columns would produce. The
/// batch walk decodes each referenced column once and fans it out to every
/// subscribing row.
class BatchGroupCountAccumulator {
 public:
  /// An unbound accumulator; call Reset before use (thread_local-friendly,
  /// like GroupCountAccumulator).
  BatchGroupCountAccumulator() = default;

  /// Binds to `counts`, resizing it to num_queries * num_groups zeros.
  /// `counts` must outlive the accumulator.
  void Reset(uint32_t num_queries, uint32_t num_groups,
             std::vector<uint32_t>* counts) {
    counts_ = counts;
    counts_->assign(static_cast<size_t>(num_queries) * num_groups, 0);
    // Same abandoned-binding discipline as GroupCountAccumulator::Reset:
    // Finish re-zeroes folded entries, so the difference matrix is only
    // dirty if a prior binding was dropped after AddRange without Finish.
    if (has_ranges_) std::fill(diff_.begin(), diff_.end(), 0);
    size_t diff_needed =
        static_cast<size_t>(num_queries) * (static_cast<size_t>(num_groups) + 1);
    if (diff_.size() < diff_needed) diff_.resize(diff_needed, 0);
    if (row_has_ranges_.size() < num_queries) {
      row_has_ranges_.resize(num_queries, 0);
    }
    std::fill(row_has_ranges_.begin(),
              row_has_ranges_.begin() + num_queries, 0);
    num_queries_ = num_queries;
    num_groups_ = num_groups;
    has_ranges_ = false;
  }

  uint32_t num_queries() const { return num_queries_; }
  uint32_t num_groups() const { return num_groups_; }

  /// Query q's counter row (num_groups entries); the direct target for the
  /// array and bitset kernels.
  uint32_t* row(uint32_t q) {
    return counts_->data() + static_cast<size_t>(q) * num_groups_;
  }

  /// Adds `weight` to every group in [first, last] inclusive of query q's
  /// row, in O(1).
  void AddRange(uint32_t q, uint32_t first, uint32_t last, uint32_t weight) {
    uint32_t* d =
        diff_.data() + static_cast<size_t>(q) * (num_groups_ + size_t{1});
    d[first] += weight;
    d[last + 1] -= weight;  // unsigned wrap-around is intentional
    row_has_ranges_[q] = 1;
    has_ranges_ = true;
  }

  /// Folds pending ranges of every dirty row into its counters, re-zeroing
  /// the difference matrix. Call once per Reset, before reading counts.
  void Finish() {
    if (!has_ranges_) return;
    for (uint32_t q = 0; q < num_queries_; ++q) {
      if (!row_has_ranges_[q]) continue;
      row_has_ranges_[q] = 0;
      uint32_t* d =
          diff_.data() + static_cast<size_t>(q) * (num_groups_ + size_t{1});
      uint32_t running = 0;
      uint32_t* c = row(q);
      for (uint32_t g = 0; g < num_groups_; ++g) {
        running += d[g];
        d[g] = 0;
        c[g] += running;
      }
      d[num_groups_] = 0;  // AddRange(.., num_groups - 1, ..) writes here
    }
    has_ranges_ = false;
  }

 private:
  std::vector<uint32_t>* counts_ = nullptr;
  std::vector<uint32_t> diff_;  // num_queries rows of num_groups + 1
  std::vector<uint8_t> row_has_ranges_;
  uint32_t num_queries_ = 0;
  uint32_t num_groups_ = 0;
  bool has_ranges_ = false;
};

}  // namespace bitmap
}  // namespace les3

#endif  // LES3_BITMAP_KERNELS_H_
