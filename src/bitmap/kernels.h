// Batched accumulation kernels for the TGM candidate-generation pass.
//
// The hot loop of a query adds a per-token weight into a group-counter
// array for every group present in that token's bitmap column (Equation
// 2/4). Walking each column bit-by-bit through ForEach wastes the
// container structure Roaring maintains; GroupCountAccumulator instead
// lets each container kind use its natural batch shape:
//
//   - array containers bulk-add into the counter array,
//   - bitset containers scan words and add per set bit (no per-value
//     callback, no re-derived base offsets),
//   - run containers record (start, end, weight) into a difference array
//     in O(1) per run; one prefix-sum pass at Finish() folds every run of
//     every column into the counters at once.
//
// The difference array uses unsigned wrap-around arithmetic: the prefix
// sums are exact modulo 2^32 and every true counter fits in uint32, so the
// folded values are exact.

#ifndef LES3_BITMAP_KERNELS_H_
#define LES3_BITMAP_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace les3 {
namespace bitmap {

/// \brief Word-scan accumulation kernel shared by the dense BitVector and
/// the Roaring bitset container: adds `weight` to `counts[base + i]` for
/// every set bit i of `words[0 .. num_words)`. One pass over the words,
/// direct adds, no per-value callback.
inline void AccumulateWords(const uint64_t* words, size_t num_words,
                            uint32_t base, uint32_t* counts,
                            uint32_t weight) {
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t bits = words[w];
    if (bits == 0) continue;
    uint32_t word_base = base + (static_cast<uint32_t>(w) << 6);
    do {
      counts[word_base + static_cast<uint32_t>(__builtin_ctzll(bits))] +=
          weight;
      bits &= bits - 1;
    } while (bits);
  }
}

/// \brief Weighted group-counter array with an O(1)-per-run side channel.
///
/// Usage: construct (or Reset) over the target counter vector, stream any
/// number of columns through the AccumulateInto kernels, then call
/// Finish() exactly once before reading the counters.
class GroupCountAccumulator {
 public:
  /// An unbound accumulator; call Reset before use. Default-constructible
  /// so call sites can keep one thread_local instance and amortize the
  /// difference-array allocation across queries.
  GroupCountAccumulator() = default;

  /// Binds the accumulator to `counts`, resizing it to `num_groups` zeros.
  /// `counts` must outlive the accumulator.
  GroupCountAccumulator(uint32_t num_groups, std::vector<uint32_t>* counts) {
    Reset(num_groups, counts);
  }

  void Reset(uint32_t num_groups, std::vector<uint32_t>* counts) {
    counts_ = counts;
    counts_->assign(num_groups, 0);
    // The difference array is kept all-zero between uses (Finish re-zeroes
    // the entries it folds), so resets normally never re-clear it. A prior
    // binding abandoned after AddRange without Finish() would leak its
    // deltas into this use, so discard any it left behind.
    if (has_ranges_) std::fill(diff_.begin(), diff_.end(), 0);
    if (diff_.size() < static_cast<size_t>(num_groups) + 1) {
      diff_.resize(static_cast<size_t>(num_groups) + 1, 0);
    }
    num_groups_ = num_groups;
    has_ranges_ = false;
  }

  uint32_t num_groups() const { return num_groups_; }

  /// Direct per-group adds (array and bitset kernels write here).
  uint32_t* counts() { return counts_->data(); }

  /// Adds `weight` to every group in [first, last] inclusive, in O(1).
  void AddRange(uint32_t first, uint32_t last, uint32_t weight) {
    diff_[first] += weight;
    diff_[last + 1] -= weight;  // unsigned wrap-around is intentional
    has_ranges_ = true;
  }

  /// Folds the pending ranges into the counter array, re-zeroing the
  /// difference array as it goes. Call once per Reset, before reading the
  /// counters.
  void Finish() {
    if (!has_ranges_) return;
    uint32_t running = 0;
    uint32_t* c = counts_->data();
    for (uint32_t g = 0; g < num_groups_; ++g) {
      running += diff_[g];
      diff_[g] = 0;
      c[g] += running;
    }
    diff_[num_groups_] = 0;  // AddRange(.., num_groups - 1, ..) writes here
    has_ranges_ = false;
  }

 private:
  std::vector<uint32_t>* counts_ = nullptr;
  std::vector<uint32_t> diff_;  // num_groups + 1 entries
  uint32_t num_groups_ = 0;
  bool has_ranges_ = false;
};

}  // namespace bitmap
}  // namespace les3

#endif  // LES3_BITMAP_KERNELS_H_
