// A from-scratch Roaring-style compressed bitmap (Lemire et al., reference
// [41] of the paper). 32-bit values are chunked by their high 16 bits; each
// chunk is stored in one of three container kinds:
//
//   - Array:  sorted uint16 list, used while cardinality <= 4096;
//   - Bitset: 1024 x uint64 dense bitmap, used above 4096;
//   - Run:    sorted (start, length-1) intervals, chosen by RunOptimize()
//             when it is the smallest encoding.
//
// The TGM stores one Roaring bitmap per token (the set of groups containing
// that token), so membership iteration and intersection cardinality are the
// hot operations.

#ifndef LES3_BITMAP_ROARING_H_
#define LES3_BITMAP_ROARING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace les3 {

namespace persist {
class ByteWriter;
class ByteReader;
}  // namespace persist

namespace bitmap {

class GroupCountAccumulator;
class BatchGroupCountAccumulator;
struct QueryWeight;

namespace internal {

/// Cardinality threshold at which an array container becomes a bitset.
inline constexpr size_t kArrayMaxCardinality = 4096;

struct ArrayContainer {
  std::vector<uint16_t> values;  // sorted, unique
};

struct BitsetContainer {
  std::vector<uint64_t> words;  // always 1024 words
  uint32_t cardinality = 0;
  BitsetContainer() : words(1024, 0) {}
};

struct RunContainer {
  struct Run {
    uint16_t start;
    uint16_t length;  // run covers [start, start + length] inclusive
  };
  std::vector<Run> runs;  // sorted, non-overlapping, non-adjacent
};

using Container = std::variant<ArrayContainer, BitsetContainer, RunContainer>;

}  // namespace internal

/// \brief Compressed bitmap over uint32 values.
class Roaring {
 public:
  Roaring() = default;

  /// Bulk-builds from a sorted, duplicate-free list of values.
  static Roaring FromSorted(const std::vector<uint32_t>& sorted_values);

  /// Inserts `value` (no-op if present).
  void Add(uint32_t value);

  /// Removes `value`; returns whether it was present. A container left
  /// empty is dropped (Empty() tests keys_, and Deserialize rejects empty
  /// containers, so none may linger). A bitset whose cardinality falls
  /// back under the array threshold stays a bitset — mirroring Add, which
  /// never converts downward — and remains a legal serialized form.
  bool Remove(uint32_t value);

  bool Contains(uint32_t value) const;

  uint64_t Cardinality() const;

  bool Empty() const { return keys_.empty(); }

  /// |this AND other|.
  uint64_t AndCardinality(const Roaring& other) const;

  /// \brief Batched accumulation kernel: adds `weight` to `acc` for every
  /// value in this bitmap, container-at-a-time (see bitmap/kernels.h).
  /// Array containers bulk-add, bitset containers scan words, run
  /// containers post difference-array ranges in O(runs). Every value must
  /// be < acc.num_groups().
  void AccumulateInto(GroupCountAccumulator& acc, uint32_t weight) const;

  /// Same kernel writing directly into a counter array of `counts_size`
  /// entries (at least max-value+1); runs add per element. The size bounds
  /// the vectorized bitset kernel's whole-word writes (bitmap/kernels.h).
  /// Prefer the accumulator overload when folding several columns.
  void AccumulateInto(uint32_t* counts, size_t counts_size,
                      uint32_t weight) const;

  /// \brief Fan-out accumulation for batched probes: decodes each container
  /// once and replays it into every subscriber's counter row with that
  /// subscriber's weight (subs[i].weight times into row subs[i].query).
  /// Per-row arithmetic is identical to AccumulateInto(acc, weight), so
  /// each row stays byte-exact versus a solo walk. Every value must be
  /// < acc.num_groups(); every subs[i].query < acc.num_queries().
  void AccumulateIntoBatch(BatchGroupCountAccumulator& acc,
                           const QueryWeight* subs, size_t num_subs) const;

  /// \brief Sum of weights of the (value, weight) probes contained in this
  /// bitmap. `probes` must be sorted ascending by value; the kernel
  /// resolves each 64K chunk's container once instead of per probe.
  uint64_t WeightedIntersect(
      const std::pair<uint32_t, uint32_t>* probes, size_t n) const;

  /// |this OR other|.
  uint64_t OrCardinality(const Roaring& other) const;

  /// Converts containers to run encoding wherever that is smaller. Returns
  /// the number of containers converted.
  size_t RunOptimize();

  /// Calls fn(v) for every value v in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const;

  /// Approximate heap bytes of the container payloads (the quantity reported
  /// as "index size" in the benches).
  uint64_t MemoryBytes() const;

  bool operator==(const Roaring& other) const;

  /// All values, ascending (test/debug helper).
  std::vector<uint32_t> ToVector() const;

  /// \brief Serializes the exact container state — keys, kinds (array /
  /// bitset / run), payloads — so a reloaded bitmap is byte-identical on
  /// re-serialization (see docs/snapshot_format.md).
  void Serialize(persist::ByteWriter* writer) const;

  /// Bounds-checked inverse. Validates every structural invariant the
  /// kernels rely on (keys and array values strictly ascending, bitset
  /// cardinality matching its popcount, runs sorted / non-overlapping /
  /// non-adjacent) and rejects any value >= `universe_bound` — corrupted
  /// input yields a Status, never an out-of-range kernel write.
  static Result<Roaring> Deserialize(persist::ByteReader* reader,
                                     uint32_t universe_bound);

 private:
  internal::Container* FindContainer(uint16_t key);
  const internal::Container* FindContainer(uint16_t key) const;
  internal::Container& GetOrCreateContainer(uint16_t key);

  // Parallel arrays sorted by key (the high 16 bits).
  std::vector<uint16_t> keys_;
  std::vector<internal::Container> containers_;
};

// ---------------------------------------------------------------------------
// Template implementation.

namespace internal {

template <typename Fn>
void ForEachInContainer(const Container& c, uint32_t base, Fn&& fn) {
  if (const auto* a = std::get_if<ArrayContainer>(&c)) {
    for (uint16_t v : a->values) fn(base | v);
  } else if (const auto* b = std::get_if<BitsetContainer>(&c)) {
    for (uint32_t w = 0; w < 1024; ++w) {
      uint64_t bits = b->words[w];
      while (bits) {
        uint32_t low = (w << 6) + static_cast<uint32_t>(__builtin_ctzll(bits));
        fn(base | low);
        bits &= bits - 1;
      }
    }
  } else {
    const auto& runs = std::get<RunContainer>(c).runs;
    for (const auto& r : runs) {
      for (uint32_t v = r.start; v <= uint32_t(r.start) + r.length; ++v) {
        fn(base | v);
      }
    }
  }
}

}  // namespace internal

template <typename Fn>
void Roaring::ForEach(Fn&& fn) const {
  for (size_t i = 0; i < keys_.size(); ++i) {
    internal::ForEachInContainer(containers_[i],
                                 static_cast<uint32_t>(keys_[i]) << 16, fn);
  }
}

}  // namespace bitmap
}  // namespace les3

#endif  // LES3_BITMAP_ROARING_H_
