#include "bitmap/bitvector.h"

#include <algorithm>

#include "bitmap/kernels.h"
#include "persist/bytes.h"

namespace les3 {
namespace bitmap {

void BitVector::Resize(uint64_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  // Clear any stale bits past the new logical end.
  if (num_bits & 63) {
    words_.back() &= (1ULL << (num_bits & 63)) - 1;
  }
}

uint64_t BitVector::Count() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += __builtin_popcountll(w);
  return total;
}

uint64_t BitVector::AndCount(const BitVector& other) const {
  uint64_t n = std::min(words_.size(), other.words_.size());
  uint64_t total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += __builtin_popcountll(words_[i] & other.words_[i]);
  }
  return total;
}

void BitVector::AccumulateInto(uint32_t* counts, uint32_t weight) const {
  // The counter array covers the value universe, i.e. num_bits_ entries —
  // the vectorized kernel needs that limit to keep its whole-word
  // read-modify-writes inside the array on the final partial word.
  AccumulateWords(words_.data(), words_.size(), /*base=*/0, counts, weight,
                  /*counts_size=*/num_bits_);
}

void BitVector::Serialize(persist::ByteWriter* writer) const {
  writer->WriteU64(num_bits_);
  for (uint64_t w : words_) writer->WriteU64(w);
}

Result<BitVector> BitVector::Deserialize(persist::ByteReader* reader,
                                         uint64_t max_bits) {
  uint64_t num_bits = 0;
  LES3_RETURN_NOT_OK(reader->ReadU64(&num_bits));
  if (num_bits > max_bits) {
    return Status::OutOfRange("bit vector size " + std::to_string(num_bits) +
                              " exceeds universe bound " +
                              std::to_string(max_bits));
  }
  BitVector bits(num_bits);
  for (auto& w : bits.words_) LES3_RETURN_NOT_OK(reader->ReadU64(&w));
  // Stray bits past the logical end would leak into the whole-word kernels
  // (and, for positions >= the group universe, into out-of-range counter
  // writes), so they are structural corruption.
  if ((num_bits & 63) != 0 &&
      (bits.words_.back() & ~((1ULL << (num_bits & 63)) - 1)) != 0) {
    return Status::InvalidArgument(
        "bit vector has bits set past its logical size");
  }
  return bits;
}

uint64_t BitVector::WeightedIntersect(
    const std::pair<uint32_t, uint32_t>* probes, size_t n) const {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (probes[i].first < num_bits_ && Get(probes[i].first)) {
      total += probes[i].second;
    }
  }
  return total;
}

}  // namespace bitmap
}  // namespace les3
