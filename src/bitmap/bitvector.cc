#include "bitmap/bitvector.h"

#include <algorithm>

namespace les3 {
namespace bitmap {

void BitVector::Resize(uint64_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  // Clear any stale bits past the new logical end.
  if (num_bits & 63) {
    words_.back() &= (1ULL << (num_bits & 63)) - 1;
  }
}

uint64_t BitVector::Count() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += __builtin_popcountll(w);
  return total;
}

uint64_t BitVector::AndCount(const BitVector& other) const {
  uint64_t n = std::min(words_.size(), other.words_.size());
  uint64_t total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += __builtin_popcountll(words_[i] & other.words_[i]);
  }
  return total;
}

}  // namespace bitmap
}  // namespace les3
