// BitmapColumn — one TGM column (or HTGM row) behind a pluggable backend.
//
// The TGM stores one bitmap per token; which representation wins depends on
// the corpus. Compressed Roaring columns are compact on sparse/skewed data
// and turn dense columns into run containers, while a flat BitVector sized
// to the group universe trades memory (one bit per group per token,
// regardless of cardinality) for branch-free word-scan kernels that are
// fastest when most columns are dense. The backend is chosen per index via
// EngineOptions (api layer) and surfaces in Describe()/IndexBytes().
//
// Both backends feed the same batched accumulation kernels
// (bitmap/kernels.h), so the search layer is written once against this
// wrapper.

#ifndef LES3_BITMAP_BITMAP_COLUMN_H_
#define LES3_BITMAP_BITMAP_COLUMN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bitmap/bitvector.h"
#include "bitmap/kernels.h"
#include "bitmap/roaring.h"
#include "util/status.h"

namespace les3 {
namespace bitmap {

/// Storage representation of the TGM bitmap columns.
enum class BitmapBackend {
  kRoaring,    // compressed array/bitset/run containers (the default)
  kBitVector,  // flat dense bits over the value universe
};

/// Canonical backend name ("roaring", "bitvector").
std::string ToString(BitmapBackend backend);

/// Parses a canonical bitmap backend name; InvalidArgument otherwise.
Result<BitmapBackend> ParseBitmapBackend(const std::string& name);

/// \brief One bitmap column in the selected representation.
class BitmapColumn {
 public:
  explicit BitmapColumn(BitmapBackend backend = BitmapBackend::kRoaring) {
    if (backend == BitmapBackend::kBitVector) rep_.emplace<Dense>();
  }

  /// Bulk-builds from a sorted, duplicate-free list of values.
  static BitmapColumn FromSorted(BitmapBackend backend,
                                 const std::vector<uint32_t>& sorted_values);

  BitmapBackend backend() const {
    return std::holds_alternative<Roaring>(rep_) ? BitmapBackend::kRoaring
                                                 : BitmapBackend::kBitVector;
  }

  /// Inserts `value` (no-op if present). The dense backend grows its
  /// universe as needed.
  void Add(uint32_t value);

  /// Removes `value`; returns whether it was present. Used by the group
  /// maintenance path (tgm::Tgm::RecomputeGroupColumns) to drop stale
  /// bits left behind by Delete/Update.
  bool Remove(uint32_t value);

  bool Contains(uint32_t value) const;

  uint64_t Cardinality() const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) return r->Cardinality();
    return std::get<Dense>(rep_).cardinality;
  }

  /// O(1) in both backends (Roaring::Cardinality walks every run, so the
  /// hot path must not test emptiness through it).
  bool Empty() const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) return r->Empty();
    return std::get<Dense>(rep_).cardinality == 0;
  }

  /// Container-aware batched accumulation (see bitmap/kernels.h): adds
  /// `weight` to acc for every value. Values must be < acc.num_groups().
  void AccumulateInto(GroupCountAccumulator& acc, uint32_t weight) const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) {
      r->AccumulateInto(acc, weight);
    } else {
      std::get<Dense>(rep_).bits.AccumulateInto(acc.counts(), weight);
    }
  }

  /// Fan-out variant for batched probes (see bitmap/kernels.h): decodes
  /// this column once and adds subs[i].weight into row subs[i].query of
  /// the batch accumulator for every value. Each row's arithmetic matches
  /// the single-query AccumulateInto exactly.
  void AccumulateIntoBatch(BatchGroupCountAccumulator& acc,
                           const QueryWeight* subs, size_t num_subs) const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) {
      r->AccumulateIntoBatch(acc, subs, num_subs);
    } else {
      const BitVector& bits = std::get<Dense>(rep_).bits;
      for (size_t s = 0; s < num_subs; ++s) {
        bits.AccumulateInto(acc.row(subs[s].query), subs[s].weight);
      }
    }
  }

  /// Direct-array variant; `counts` has `counts_size` entries and must
  /// cover the value universe (the size bounds the vectorized kernels'
  /// whole-word writes, see bitmap/kernels.h).
  void AccumulateInto(uint32_t* counts, size_t counts_size,
                      uint32_t weight) const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) {
      r->AccumulateInto(counts, counts_size, weight);
    } else {
      std::get<Dense>(rep_).bits.AccumulateInto(counts, weight);
    }
  }

  /// Sum of weights of the sorted (value, weight) probes present here.
  uint64_t WeightedIntersect(const std::pair<uint32_t, uint32_t>* probes,
                             size_t n) const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) {
      return r->WeightedIntersect(probes, n);
    }
    return std::get<Dense>(rep_).bits.WeightedIntersect(probes, n);
  }

  /// Run-encodes Roaring containers where smaller; no-op for the dense
  /// backend. Returns the number of containers converted.
  size_t RunOptimize() {
    auto* r = std::get_if<Roaring>(&rep_);
    return r != nullptr ? r->RunOptimize() : 0;
  }

  uint64_t MemoryBytes() const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) return r->MemoryBytes();
    return std::get<Dense>(rep_).bits.MemoryBytes();
  }

  /// Calls fn(v) for every value v in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (const auto* r = std::get_if<Roaring>(&rep_)) {
      r->ForEach(fn);
    } else {
      std::get<Dense>(rep_).bits.ForEach(
          [&](uint64_t v) { fn(static_cast<uint32_t>(v)); });
    }
  }

  /// All values, ascending (test/debug helper).
  std::vector<uint32_t> ToVector() const;

  /// Serializes a backend tag plus the active representation's exact state
  /// (docs/snapshot_format.md); re-serializing a deserialized column is
  /// byte-identical.
  void Serialize(persist::ByteWriter* writer) const;

  /// Bounds-checked inverse: validates the representation invariants and
  /// rejects any stored value >= `universe_bound` (the group count), so a
  /// corrupted column can never drive the accumulation kernels out of the
  /// counter array.
  static Result<BitmapColumn> Deserialize(persist::ByteReader* reader,
                                          uint32_t universe_bound);

 private:
  // BitVector has no cardinality counter of its own, so the dense
  // alternative carries one (Count() would be a full word scan).
  struct Dense {
    BitVector bits;
    uint64_t cardinality = 0;
  };
  // Only the active representation is stored: a TGM holds one column per
  // token, so dead members would dominate the fixed footprint.
  std::variant<Roaring, Dense> rep_;
};

}  // namespace bitmap
}  // namespace les3

#endif  // LES3_BITMAP_BITMAP_COLUMN_H_
