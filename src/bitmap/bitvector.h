// A flat, uncompressed bit vector with fast population-count operations.
//
// Used for the dense row view of the token-group matrix and as the reference
// point for the compressed Roaring representation (bitmap/roaring.h).

#ifndef LES3_BITMAP_BITVECTOR_H_
#define LES3_BITMAP_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace les3 {

namespace persist {
class ByteWriter;
class ByteReader;
}  // namespace persist

namespace bitmap {

/// \brief Fixed-size dense bit vector.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `num_bits` zero bits.
  explicit BitVector(uint64_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  uint64_t size() const { return num_bits_; }

  void Set(uint64_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(uint64_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Get(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Resizes to `num_bits`, zero-filling any new bits.
  void Resize(uint64_t num_bits);

  /// Number of set bits.
  uint64_t Count() const;

  /// Number of positions set in both vectors (sizes may differ; the shorter
  /// vector is treated as zero-padded).
  uint64_t AndCount(const BitVector& other) const;

  /// \brief Batched accumulation kernel: adds `weight` to `counts[i]` for
  /// every set bit i, scanning word-at-a-time (the dense counterpart of
  /// Roaring::AccumulateInto). `counts` must have at least size() entries.
  void AccumulateInto(uint32_t* counts, uint32_t weight) const;

  /// Sum of weights of the (position, weight) probes whose bit is set.
  /// Positions at or beyond size() read as zero.
  uint64_t WeightedIntersect(const std::pair<uint32_t, uint32_t>* probes,
                             size_t n) const;

  /// Calls fn(i) for every set bit i in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        uint64_t bit = bits & (~bits + 1);
        fn((w << 6) + static_cast<uint64_t>(__builtin_ctzll(bits)));
        bits ^= bit;
      }
    }
  }

  /// Heap bytes used by the word array.
  uint64_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }

  /// Serializes num_bits + the word array (docs/snapshot_format.md).
  void Serialize(persist::ByteWriter* writer) const;

  /// Bounds-checked inverse. Rejects num_bits > `max_bits` and any set bit
  /// at or beyond num_bits (stray trailing bits would corrupt the word-scan
  /// kernels, which visit whole words).
  static Result<BitVector> Deserialize(persist::ByteReader* reader,
                                       uint64_t max_bits);

 private:
  uint64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bitmap
}  // namespace les3

#endif  // LES3_BITMAP_BITVECTOR_H_
