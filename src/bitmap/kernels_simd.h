// SIMD specializations of the batched accumulation kernels
// (bitmap/kernels.h), with runtime dispatch (core/simd_dispatch.h).
//
// Two kernel families:
//
//   - AccumulateWords (bitset word scan): the scalar kernel extracts one
//     set bit at a time (ctz + clear-lowest) and does a dependent add per
//     bit. The vector kernels instead treat a dense word as 64 unconditional
//     lanes: expand the word's bits into a 0/weight vector and add it onto
//     the counter array 8 (AVX2) or 16 (AVX-512, using the word's bits
//     directly as the write mask) lanes at a time. That read-modify-writes
//     the full 64-counter span of the word, so it is only taken when the
//     span fits inside the counter array (`counts_size`) and the word is
//     dense enough to beat the per-bit loop; sparse words and boundary
//     words keep the scalar path. Results are identical: lanes whose bit
//     is clear receive +0 (AVX2) or are write-masked out (AVX-512).
//
//   - ArrayAccumulate (array-container bulk add): scattered counter
//     increments at sorted, duplicate-free 16-bit offsets. AVX2 has no
//     scatter, so only the AVX-512 tier vectorizes it (gather + add +
//     scatter, conflict-free because the offsets are strictly increasing).
//
// The per-level entries are exported for the forced-path tests and
// bench/micro_bitmap.cc; production code calls the dispatching forms in
// bitmap/kernels.h.

#ifndef LES3_BITMAP_KERNELS_SIMD_H_
#define LES3_BITMAP_KERNELS_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "core/simd_dispatch.h"

namespace les3 {
namespace bitmap {

/// Per-bit scalar sink for one word: adds `weight` at word_base + bit
/// index for every set bit. Shared by the scalar kernel and the sparse /
/// boundary fallback inside the vector kernels.
inline void AccumulateWordBits(uint64_t bits, uint32_t word_base,
                               uint32_t* counts, uint32_t weight) {
  while (bits != 0) {
    counts[word_base + static_cast<uint32_t>(__builtin_ctzll(bits))] +=
        weight;
    bits &= bits - 1;
  }
}

/// Defined in kernels_simd_avx2.cc / kernels_simd_avx512.cc (scalar
/// forwarding stubs when built without the instruction set — unreachable
/// through dispatch but callable from tests). `counts_size` is the number
/// of addressable entries of `counts`; vectorized word spans that would
/// cross it fall back to the per-bit path.
void AccumulateWordsAvx2(const uint64_t* words, size_t num_words,
                         uint32_t base, uint32_t* counts, uint32_t weight,
                         size_t counts_size);
void AccumulateWordsAvx512(const uint64_t* words, size_t num_words,
                           uint32_t base, uint32_t* counts, uint32_t weight,
                           size_t counts_size);

/// Bulk-add for a sorted, duplicate-free array container: adds `weight`
/// to counts[base + v] for every value. AVX-512 gather/scatter tier.
void ArrayAccumulateAvx512(const uint16_t* values, size_t n, uint32_t base,
                           uint32_t* counts, uint32_t weight);

}  // namespace bitmap
}  // namespace les3

#endif  // LES3_BITMAP_KERNELS_SIMD_H_
