#include "bitmap/roaring.h"

#include <algorithm>

#include "bitmap/kernels.h"
#include "persist/bytes.h"
#include "util/logging.h"

namespace les3 {
namespace bitmap {

using internal::ArrayContainer;
using internal::BitsetContainer;
using internal::Container;
using internal::kArrayMaxCardinality;
using internal::RunContainer;

namespace {

uint32_t ContainerCardinality(const Container& c) {
  if (const auto* a = std::get_if<ArrayContainer>(&c)) {
    return static_cast<uint32_t>(a->values.size());
  }
  if (const auto* b = std::get_if<BitsetContainer>(&c)) {
    return b->cardinality;
  }
  const auto& runs = std::get<RunContainer>(c).runs;
  uint32_t total = 0;
  for (const auto& r : runs) total += static_cast<uint32_t>(r.length) + 1;
  return total;
}

bool ContainerContains(const Container& c, uint16_t low) {
  if (const auto* a = std::get_if<ArrayContainer>(&c)) {
    return std::binary_search(a->values.begin(), a->values.end(), low);
  }
  if (const auto* b = std::get_if<BitsetContainer>(&c)) {
    return (b->words[low >> 6] >> (low & 63)) & 1ULL;
  }
  const auto& runs = std::get<RunContainer>(c).runs;
  // First run whose start is > low, then check the previous one.
  auto it = std::upper_bound(
      runs.begin(), runs.end(), low,
      [](uint16_t v, const RunContainer::Run& r) { return v < r.start; });
  if (it == runs.begin()) return false;
  --it;
  return low <= static_cast<uint32_t>(it->start) + it->length;
}

BitsetContainer ArrayToBitset(const ArrayContainer& a) {
  BitsetContainer b;
  for (uint16_t v : a.values) b.words[v >> 6] |= (1ULL << (v & 63));
  b.cardinality = static_cast<uint32_t>(a.values.size());
  return b;
}

std::vector<uint16_t> ContainerToValues(const Container& c) {
  std::vector<uint16_t> out;
  out.reserve(ContainerCardinality(c));
  internal::ForEachInContainer(
      c, 0, [&](uint32_t v) { out.push_back(static_cast<uint16_t>(v)); });
  return out;
}

uint32_t CountRuns(const std::vector<uint16_t>& sorted) {
  if (sorted.empty()) return 0;
  uint32_t runs = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1] + 1) ++runs;
  }
  return runs;
}

uint64_t ContainerBytes(const Container& c) {
  if (const auto* a = std::get_if<ArrayContainer>(&c)) {
    return a->values.size() * sizeof(uint16_t);
  }
  if (std::holds_alternative<BitsetContainer>(c)) {
    return 1024 * sizeof(uint64_t);
  }
  return std::get<RunContainer>(c).runs.size() * sizeof(RunContainer::Run);
}

uint64_t AndArrayArray(const ArrayContainer& x, const ArrayContainer& y) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < x.values.size() && j < y.values.size()) {
    if (x.values[i] < y.values[j]) {
      ++i;
    } else if (x.values[i] > y.values[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t AndBitsetBitset(const BitsetContainer& x, const BitsetContainer& y) {
  uint64_t count = 0;
  for (size_t w = 0; w < 1024; ++w) {
    count += __builtin_popcountll(x.words[w] & y.words[w]);
  }
  return count;
}

uint64_t AndGeneric(const Container& x, const Container& y) {
  // Fast paths for the common pairings; anything involving a run container
  // falls back to probing with the smaller side's values.
  if (const auto* ax = std::get_if<ArrayContainer>(&x)) {
    if (const auto* ay = std::get_if<ArrayContainer>(&y)) {
      return AndArrayArray(*ax, *ay);
    }
    uint64_t count = 0;
    for (uint16_t v : ax->values) count += ContainerContains(y, v);
    return count;
  }
  if (std::holds_alternative<ArrayContainer>(y)) return AndGeneric(y, x);
  if (const auto* bx = std::get_if<BitsetContainer>(&x)) {
    if (const auto* by = std::get_if<BitsetContainer>(&y)) {
      return AndBitsetBitset(*bx, *by);
    }
  }
  // At least one run container: iterate the smaller cardinality side.
  const Container& probe =
      ContainerCardinality(x) <= ContainerCardinality(y) ? x : y;
  const Container& other = (&probe == &x) ? y : x;
  uint64_t count = 0;
  internal::ForEachInContainer(probe, 0, [&](uint32_t v) {
    count += ContainerContains(other, static_cast<uint16_t>(v));
  });
  return count;
}

}  // namespace

Container* Roaring::FindContainer(uint16_t key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &containers_[static_cast<size_t>(it - keys_.begin())];
}

const Container* Roaring::FindContainer(uint16_t key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &containers_[static_cast<size_t>(it - keys_.begin())];
}

Container& Roaring::GetOrCreateContainer(uint16_t key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  size_t idx = static_cast<size_t>(it - keys_.begin());
  if (it == keys_.end() || *it != key) {
    keys_.insert(it, key);
    containers_.insert(containers_.begin() + idx, ArrayContainer{});
  }
  return containers_[idx];
}

Roaring Roaring::FromSorted(const std::vector<uint32_t>& sorted_values) {
  Roaring r;
  size_t i = 0;
  while (i < sorted_values.size()) {
    uint16_t key = static_cast<uint16_t>(sorted_values[i] >> 16);
    size_t j = i;
    while (j < sorted_values.size() &&
           static_cast<uint16_t>(sorted_values[j] >> 16) == key) {
      ++j;
    }
    size_t count = j - i;
    r.keys_.push_back(key);
    if (count <= kArrayMaxCardinality) {
      ArrayContainer a;
      a.values.reserve(count);
      for (size_t p = i; p < j; ++p) {
        a.values.push_back(static_cast<uint16_t>(sorted_values[p] & 0xFFFF));
      }
      r.containers_.push_back(std::move(a));
    } else {
      BitsetContainer b;
      for (size_t p = i; p < j; ++p) {
        uint16_t low = static_cast<uint16_t>(sorted_values[p] & 0xFFFF);
        b.words[low >> 6] |= (1ULL << (low & 63));
      }
      b.cardinality = static_cast<uint32_t>(count);
      r.containers_.push_back(std::move(b));
    }
    i = j;
  }
  return r;
}

void Roaring::Add(uint32_t value) {
  uint16_t key = static_cast<uint16_t>(value >> 16);
  uint16_t low = static_cast<uint16_t>(value & 0xFFFF);
  Container& c = GetOrCreateContainer(key);
  if (auto* a = std::get_if<ArrayContainer>(&c)) {
    auto it = std::lower_bound(a->values.begin(), a->values.end(), low);
    if (it != a->values.end() && *it == low) return;
    if (a->values.size() >= kArrayMaxCardinality) {
      BitsetContainer b = ArrayToBitset(*a);
      b.words[low >> 6] |= (1ULL << (low & 63));
      ++b.cardinality;
      c = std::move(b);
      return;
    }
    a->values.insert(it, low);
  } else if (auto* b = std::get_if<BitsetContainer>(&c)) {
    uint64_t mask = 1ULL << (low & 63);
    if (!(b->words[low >> 6] & mask)) {
      b->words[low >> 6] |= mask;
      ++b->cardinality;
    }
  } else {
    auto& runs = std::get<RunContainer>(c).runs;
    if (ContainerContains(c, low)) return;
    // Insert a singleton run, merging with neighbours when adjacent.
    auto it = std::lower_bound(
        runs.begin(), runs.end(), low,
        [](const RunContainer::Run& r, uint16_t v) { return r.start < v; });
    bool merged = false;
    if (it != runs.begin()) {
      auto prev = it - 1;
      if (static_cast<uint32_t>(prev->start) + prev->length + 1 == low) {
        ++prev->length;
        merged = true;
        it = prev;
      }
    }
    if (!merged && it != runs.end() && low + 1 == it->start) {
      it->start = low;
      ++it->length;
      merged = true;
    }
    if (merged) {
      // The grown run may now touch its successor.
      auto next = it + 1;
      if (next != runs.end() &&
          static_cast<uint32_t>(it->start) + it->length + 1 == next->start) {
        it->length = static_cast<uint16_t>(it->length + next->length + 1);
        runs.erase(next);
      }
      return;
    }
    runs.insert(it, RunContainer::Run{low, 0});
  }
}

bool Roaring::Remove(uint32_t value) {
  uint16_t key = static_cast<uint16_t>(value >> 16);
  uint16_t low = static_cast<uint16_t>(value & 0xFFFF);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return false;
  size_t idx = static_cast<size_t>(it - keys_.begin());
  Container& c = containers_[idx];
  bool now_empty = false;
  if (auto* a = std::get_if<ArrayContainer>(&c)) {
    auto vit = std::lower_bound(a->values.begin(), a->values.end(), low);
    if (vit == a->values.end() || *vit != low) return false;
    a->values.erase(vit);
    now_empty = a->values.empty();
  } else if (auto* b = std::get_if<BitsetContainer>(&c)) {
    uint64_t mask = 1ULL << (low & 63);
    if (!(b->words[low >> 6] & mask)) return false;
    b->words[low >> 6] &= ~mask;
    --b->cardinality;
    now_empty = b->cardinality == 0;
  } else {
    auto& runs = std::get<RunContainer>(c).runs;
    // Last run with start <= low.
    auto rit = std::upper_bound(
        runs.begin(), runs.end(), low,
        [](uint16_t v, const RunContainer::Run& r) { return v < r.start; });
    if (rit == runs.begin()) return false;
    --rit;
    uint32_t end = static_cast<uint32_t>(rit->start) + rit->length;
    if (low > end) return false;
    if (rit->length == 0) {
      runs.erase(rit);
    } else if (low == rit->start) {
      ++rit->start;
      --rit->length;
    } else if (low == end) {
      --rit->length;
    } else {
      // Split [start, end] into [start, low-1] and [low+1, end].
      RunContainer::Run tail{static_cast<uint16_t>(low + 1),
                             static_cast<uint16_t>(end - low - 1)};
      rit->length = static_cast<uint16_t>(low - 1 - rit->start);
      runs.insert(rit + 1, tail);
    }
    now_empty = runs.empty();
  }
  if (now_empty) {
    keys_.erase(keys_.begin() + idx);
    containers_.erase(containers_.begin() + idx);
  }
  return true;
}

bool Roaring::Contains(uint32_t value) const {
  const Container* c = FindContainer(static_cast<uint16_t>(value >> 16));
  if (c == nullptr) return false;
  return ContainerContains(*c, static_cast<uint16_t>(value & 0xFFFF));
}

uint64_t Roaring::Cardinality() const {
  uint64_t total = 0;
  for (const auto& c : containers_) total += ContainerCardinality(c);
  return total;
}

uint64_t Roaring::AndCardinality(const Roaring& other) const {
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < keys_.size() && j < other.keys_.size()) {
    if (keys_[i] < other.keys_[j]) {
      ++i;
    } else if (keys_[i] > other.keys_[j]) {
      ++j;
    } else {
      total += AndGeneric(containers_[i], other.containers_[j]);
      ++i;
      ++j;
    }
  }
  return total;
}

uint64_t Roaring::OrCardinality(const Roaring& other) const {
  return Cardinality() + other.Cardinality() - AndCardinality(other);
}

namespace {

/// Container dispatch shared by both AccumulateInto overloads; only the
/// run-container sink differs (difference array vs direct adds), supplied
/// as run_fn(base, run).
template <typename RunFn>
void AccumulateContainers(const std::vector<uint16_t>& keys,
                          const std::vector<Container>& containers,
                          uint32_t* counts, size_t counts_size,
                          uint32_t weight, RunFn&& run_fn) {
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t base = static_cast<uint32_t>(keys[i]) << 16;
    const Container& c = containers[i];
    if (const auto* a = std::get_if<ArrayContainer>(&c)) {
      ArrayAccumulate(a->values.data(), a->values.size(), base, counts,
                      weight);
    } else if (const auto* b = std::get_if<BitsetContainer>(&c)) {
      AccumulateWords(b->words.data(), b->words.size(), base, counts, weight,
                      counts_size);
    } else {
      for (const auto& r : std::get<RunContainer>(c).runs) run_fn(base, r);
    }
  }
}

}  // namespace

void Roaring::AccumulateInto(GroupCountAccumulator& acc,
                             uint32_t weight) const {
  AccumulateContainers(keys_, containers_, acc.counts(), acc.num_groups(),
                       weight,
                       [&](uint32_t base, const RunContainer::Run& r) {
                         acc.AddRange(base + r.start,
                                      base + r.start + r.length, weight);
                       });
}

void Roaring::AccumulateInto(uint32_t* counts, size_t counts_size,
                             uint32_t weight) const {
  AccumulateContainers(
      keys_, containers_, counts, counts_size, weight,
      [&](uint32_t base, const RunContainer::Run& r) {
        // Counted loop, not `v <= last`: a run ending at value 0xFFFFFFFF
        // would wrap the inclusive bound and never terminate.
        uint32_t v = base + r.start;
        for (uint32_t n = r.length;; --n) {
          counts[v++] += weight;
          if (n == 0) break;
        }
      });
}

void Roaring::AccumulateIntoBatch(BatchGroupCountAccumulator& acc,
                                  const QueryWeight* subs,
                                  size_t num_subs) const {
  // Container-outer, subscriber-inner: each container's payload is decoded
  // (or its word span streamed) once per subscriber but resolved from the
  // variant only once, and stays cache-hot across the fan-out. Each row
  // sees the exact per-container kernel sequence of the solo walk.
  for (size_t i = 0; i < keys_.size(); ++i) {
    uint32_t base = static_cast<uint32_t>(keys_[i]) << 16;
    const Container& c = containers_[i];
    if (const auto* a = std::get_if<ArrayContainer>(&c)) {
      for (size_t s = 0; s < num_subs; ++s) {
        ArrayAccumulate(a->values.data(), a->values.size(), base,
                        acc.row(subs[s].query), subs[s].weight);
      }
    } else if (const auto* b = std::get_if<BitsetContainer>(&c)) {
      for (size_t s = 0; s < num_subs; ++s) {
        AccumulateWords(b->words.data(), b->words.size(), base,
                        acc.row(subs[s].query), subs[s].weight,
                        acc.num_groups());
      }
    } else {
      for (const auto& r : std::get<RunContainer>(c).runs) {
        for (size_t s = 0; s < num_subs; ++s) {
          acc.AddRange(subs[s].query, base + r.start,
                       base + r.start + r.length, subs[s].weight);
        }
      }
    }
  }
}

uint64_t Roaring::WeightedIntersect(
    const std::pair<uint32_t, uint32_t>* probes, size_t n) const {
  uint64_t total = 0;
  const Container* container = nullptr;
  uint32_t current_key = 0;
  bool have_key = false;
  for (size_t i = 0; i < n; ++i) {
    uint32_t key = probes[i].first >> 16;
    if (!have_key || key != current_key) {
      container = FindContainer(static_cast<uint16_t>(key));
      current_key = key;
      have_key = true;
    }
    if (container != nullptr &&
        ContainerContains(*container,
                          static_cast<uint16_t>(probes[i].first & 0xFFFF))) {
      total += probes[i].second;
    }
  }
  return total;
}

size_t Roaring::RunOptimize() {
  size_t converted = 0;
  for (auto& c : containers_) {
    if (std::holds_alternative<RunContainer>(c)) continue;
    std::vector<uint16_t> values = ContainerToValues(c);
    uint32_t num_runs = CountRuns(values);
    uint64_t run_bytes = num_runs * sizeof(RunContainer::Run);
    if (run_bytes < ContainerBytes(c)) {
      RunContainer rc;
      rc.runs.reserve(num_runs);
      size_t i = 0;
      while (i < values.size()) {
        size_t j = i;
        while (j + 1 < values.size() && values[j + 1] == values[j] + 1) ++j;
        rc.runs.push_back(RunContainer::Run{
            values[i], static_cast<uint16_t>(j - i)});
        i = j + 1;
      }
      c = std::move(rc);
      ++converted;
    }
  }
  return converted;
}

uint64_t Roaring::MemoryBytes() const {
  uint64_t total = keys_.size() * sizeof(uint16_t);
  for (const auto& c : containers_) total += ContainerBytes(c);
  return total;
}

bool Roaring::operator==(const Roaring& other) const {
  return ToVector() == other.ToVector();
}

std::vector<uint32_t> Roaring::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&](uint32_t v) { out.push_back(v); });
  return out;
}

namespace {

// Container kind tags in the serialized form (docs/snapshot_format.md).
constexpr uint8_t kArrayTag = 0;
constexpr uint8_t kBitsetTag = 1;
constexpr uint8_t kRunTag = 2;

}  // namespace

void Roaring::Serialize(persist::ByteWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(keys_.size()));
  for (size_t i = 0; i < keys_.size(); ++i) {
    writer->WriteU16(keys_[i]);
    const Container& c = containers_[i];
    if (const auto* a = std::get_if<ArrayContainer>(&c)) {
      writer->WriteU8(kArrayTag);
      writer->WriteU32(static_cast<uint32_t>(a->values.size()));
      for (uint16_t v : a->values) writer->WriteU16(v);
    } else if (const auto* b = std::get_if<BitsetContainer>(&c)) {
      writer->WriteU8(kBitsetTag);
      writer->WriteU32(b->cardinality);
      for (uint64_t w : b->words) writer->WriteU64(w);
    } else {
      const auto& runs = std::get<RunContainer>(c).runs;
      writer->WriteU8(kRunTag);
      writer->WriteU32(static_cast<uint32_t>(runs.size()));
      for (const auto& r : runs) {
        writer->WriteU16(r.start);
        writer->WriteU16(r.length);
      }
    }
  }
}

Result<Roaring> Roaring::Deserialize(persist::ByteReader* reader,
                                     uint32_t universe_bound) {
  uint32_t num_containers = 0;
  LES3_RETURN_NOT_OK(reader->ReadU32(&num_containers));
  if (num_containers > 65536) {
    return Status::InvalidArgument("roaring bitmap claims " +
                                   std::to_string(num_containers) +
                                   " containers (max 65536)");
  }
  Roaring r;
  r.keys_.reserve(num_containers);
  r.containers_.reserve(num_containers);
  uint32_t prev_key = 0;
  for (uint32_t i = 0; i < num_containers; ++i) {
    uint16_t key = 0;
    uint8_t tag = 0;
    LES3_RETURN_NOT_OK(reader->ReadU16(&key));
    LES3_RETURN_NOT_OK(reader->ReadU8(&tag));
    if (i > 0 && key <= prev_key) {
      return Status::InvalidArgument(
          "roaring container keys not strictly ascending");
    }
    prev_key = key;
    uint32_t base = static_cast<uint32_t>(key) << 16;
    uint32_t max_low = 0;  // highest low-16 value present in this container
    if (tag == kArrayTag) {
      uint32_t count = 0;
      LES3_RETURN_NOT_OK(reader->ReadU32(&count));
      // Strictly ascending uint16 values bound the count at 65536; checking
      // first also caps the allocation below at the container maximum.
      if (count == 0 || count > 65536) {
        return Status::InvalidArgument("array container count " +
                                       std::to_string(count) +
                                       " outside [1, 65536]");
      }
      ArrayContainer a;
      a.values.resize(count);
      for (uint32_t j = 0; j < count; ++j) {
        LES3_RETURN_NOT_OK(reader->ReadU16(&a.values[j]));
        if (j > 0 && a.values[j] <= a.values[j - 1]) {
          return Status::InvalidArgument(
              "array container values not strictly ascending");
        }
      }
      max_low = a.values.back();
      r.containers_.push_back(std::move(a));
    } else if (tag == kBitsetTag) {
      BitsetContainer b;
      LES3_RETURN_NOT_OK(reader->ReadU32(&b.cardinality));
      uint64_t popcount = 0;
      for (uint32_t w = 0; w < 1024; ++w) {
        LES3_RETURN_NOT_OK(reader->ReadU64(&b.words[w]));
        popcount += __builtin_popcountll(b.words[w]);
        if (b.words[w] != 0) {
          max_low = (w << 6) + (63 - __builtin_clzll(b.words[w]));
        }
      }
      // The kernels and cardinality accounting trust this counter; a
      // mismatch is corruption, not a tolerable inconsistency.
      if (popcount == 0 || popcount != b.cardinality) {
        return Status::InvalidArgument(
            "bitset container cardinality does not match its popcount");
      }
      r.containers_.push_back(std::move(b));
    } else if (tag == kRunTag) {
      uint32_t num_runs = 0;
      LES3_RETURN_NOT_OK(reader->ReadU32(&num_runs));
      if (num_runs == 0 || num_runs > 32768) {
        return Status::InvalidArgument("run container run count " +
                                       std::to_string(num_runs) +
                                       " outside [1, 32768]");
      }
      RunContainer rc;
      rc.runs.resize(num_runs);
      int64_t prev_end = -2;  // runs must be sorted and non-adjacent
      for (uint32_t j = 0; j < num_runs; ++j) {
        LES3_RETURN_NOT_OK(reader->ReadU16(&rc.runs[j].start));
        LES3_RETURN_NOT_OK(reader->ReadU16(&rc.runs[j].length));
        int64_t start = rc.runs[j].start;
        int64_t end = start + rc.runs[j].length;
        if (start <= prev_end + 1) {
          return Status::InvalidArgument(
              "run container runs overlap, touch, or are unsorted");
        }
        if (end > 65535) {
          return Status::InvalidArgument("run exceeds the container range");
        }
        prev_end = end;
      }
      max_low = static_cast<uint32_t>(prev_end);
      r.containers_.push_back(std::move(rc));
    } else {
      return Status::InvalidArgument("unknown roaring container tag " +
                                     std::to_string(tag));
    }
    r.keys_.push_back(key);
    // One bound check per container: base | max_low is its largest value.
    if ((base | max_low) >= universe_bound) {
      return Status::OutOfRange(
          "bitmap value " + std::to_string(base | max_low) +
          " exceeds universe bound " + std::to_string(universe_bound));
    }
  }
  return r;
}

}  // namespace bitmap
}  // namespace les3
