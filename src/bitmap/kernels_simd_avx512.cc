// AVX-512 specializations of the accumulation kernels. Compiled with
// -mavx512f -mavx512bw per file (CMakeLists.txt); without the flags both
// entries degrade to scalar forwarding stubs (unreachable through
// dispatch, still callable from tests).

#include "bitmap/kernels_simd.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include <immintrin.h>
#define LES3_HAVE_AVX512_TU 1
#endif

namespace les3 {
namespace bitmap {

#if defined(LES3_HAVE_AVX512_TU)

void AccumulateWordsAvx512(const uint64_t* words, size_t num_words,
                           uint32_t base, uint32_t* counts, uint32_t weight,
                           size_t counts_size) {
  // Each 16-bit slice of the word is a ready-made write mask: a masked
  // add touches exactly the counters whose bit is set, four vector ops
  // per dense word. Same in-bounds gate as the AVX2 tier (the loads span
  // all 64 counters of the word), and a lower density cutoff — the
  // masked add costs nothing per clear bit.
  constexpr int kDenseCutoff = 4;
  const __m512i vweight = _mm512_set1_epi32(static_cast<int>(weight));
  for (size_t w = 0; w < num_words; ++w) {
    const uint64_t bits = words[w];
    if (bits == 0) continue;
    const uint32_t word_base = base + (static_cast<uint32_t>(w) << 6);
    if (__builtin_popcountll(bits) < kDenseCutoff ||
        static_cast<size_t>(word_base) + 64 > counts_size) {
      AccumulateWordBits(bits, word_base, counts, weight);
      continue;
    }
    for (int k = 0; k < 4; ++k) {
      const __mmask16 m = static_cast<__mmask16>(bits >> (16 * k));
      if (m == 0) continue;
      uint32_t* p = counts + word_base + 16 * k;
      const __m512i cur = _mm512_loadu_si512(p);
      _mm512_storeu_si512(p, _mm512_mask_add_epi32(cur, m, cur, vweight));
    }
  }
}

void ArrayAccumulateAvx512(const uint16_t* values, size_t n, uint32_t base,
                           uint32_t* counts, uint32_t weight) {
  // Gather / add / scatter 16 counters at a time. Array-container values
  // are strictly increasing, so the 16 gather indices are pairwise
  // distinct and the scatter has no intra-vector write conflicts. The
  // hardware treats indices as signed 32-bit, so bases within 2^16 of the
  // signed boundary take the scalar loop (group ids never get near that
  // in practice, but the kernel must not depend on it).
  if (base > static_cast<uint32_t>(INT32_MAX) - 0x10000u) {
    for (size_t i = 0; i < n; ++i) counts[base + values[i]] += weight;
    return;
  }
  const __m512i vbase = _mm512_set1_epi32(static_cast<int>(base));
  const __m512i vweight = _mm512_set1_epi32(static_cast<int>(weight));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i idx = _mm512_add_epi32(
        _mm512_cvtepu16_epi32(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + i))),
        vbase);
    // Full-mask gather with an explicit zero source: the plain gather
    // intrinsic routes through _mm512_undefined_epi32 and trips GCC's
    // maybe-uninitialized warning.
    const __m512i cur = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), static_cast<__mmask16>(0xFFFF), idx, counts,
        4);
    _mm512_i32scatter_epi32(counts, idx, _mm512_add_epi32(cur, vweight), 4);
  }
  for (; i < n; ++i) counts[base + values[i]] += weight;
}

#else  // !LES3_HAVE_AVX512_TU

void AccumulateWordsAvx512(const uint64_t* words, size_t num_words,
                           uint32_t base, uint32_t* counts, uint32_t weight,
                           size_t counts_size) {
  AccumulateWordsAvx2(words, num_words, base, counts, weight, counts_size);
}

void ArrayAccumulateAvx512(const uint16_t* values, size_t n, uint32_t base,
                           uint32_t* counts, uint32_t weight) {
  for (size_t i = 0; i < n; ++i) counts[base + values[i]] += weight;
}

#endif  // LES3_HAVE_AVX512_TU

}  // namespace bitmap
}  // namespace les3
