#include "bitmap/bitmap_column.h"

#include "persist/bytes.h"

namespace les3 {
namespace bitmap {

std::string ToString(BitmapBackend backend) {
  return backend == BitmapBackend::kRoaring ? "roaring" : "bitvector";
}

Result<BitmapBackend> ParseBitmapBackend(const std::string& name) {
  if (name == "roaring") return BitmapBackend::kRoaring;
  if (name == "bitvector") return BitmapBackend::kBitVector;
  return Status::InvalidArgument("unknown bitmap backend \"" + name +
                                 "\" (known: roaring, bitvector)");
}

BitmapColumn BitmapColumn::FromSorted(
    BitmapBackend backend, const std::vector<uint32_t>& sorted_values) {
  BitmapColumn col(backend);
  if (auto* r = std::get_if<Roaring>(&col.rep_)) {
    *r = Roaring::FromSorted(sorted_values);
  } else {
    Dense& d = std::get<Dense>(col.rep_);
    if (!sorted_values.empty()) {
      d.bits.Resize(static_cast<uint64_t>(sorted_values.back()) + 1);
      for (uint32_t v : sorted_values) d.bits.Set(v);
    }
    d.cardinality = sorted_values.size();
  }
  return col;
}

void BitmapColumn::Add(uint32_t value) {
  if (auto* r = std::get_if<Roaring>(&rep_)) {
    r->Add(value);
    return;
  }
  Dense& d = std::get<Dense>(rep_);
  if (value >= d.bits.size()) d.bits.Resize(static_cast<uint64_t>(value) + 1);
  if (!d.bits.Get(value)) {
    d.bits.Set(value);
    ++d.cardinality;
  }
}

bool BitmapColumn::Remove(uint32_t value) {
  if (auto* r = std::get_if<Roaring>(&rep_)) return r->Remove(value);
  Dense& d = std::get<Dense>(rep_);
  if (value >= d.bits.size() || !d.bits.Get(value)) return false;
  d.bits.Clear(value);
  --d.cardinality;
  return true;
}

bool BitmapColumn::Contains(uint32_t value) const {
  if (const auto* r = std::get_if<Roaring>(&rep_)) return r->Contains(value);
  const Dense& d = std::get<Dense>(rep_);
  return value < d.bits.size() && d.bits.Get(value);
}

void BitmapColumn::Serialize(persist::ByteWriter* writer) const {
  if (const auto* r = std::get_if<Roaring>(&rep_)) {
    writer->WriteU8(static_cast<uint8_t>(BitmapBackend::kRoaring));
    r->Serialize(writer);
    return;
  }
  const Dense& d = std::get<Dense>(rep_);
  writer->WriteU8(static_cast<uint8_t>(BitmapBackend::kBitVector));
  writer->WriteU64(d.cardinality);
  d.bits.Serialize(writer);
}

Result<BitmapColumn> BitmapColumn::Deserialize(persist::ByteReader* reader,
                                               uint32_t universe_bound) {
  uint8_t tag = 0;
  LES3_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag == static_cast<uint8_t>(BitmapBackend::kRoaring)) {
    auto roaring = Roaring::Deserialize(reader, universe_bound);
    if (!roaring.ok()) return roaring.status();
    BitmapColumn col(BitmapBackend::kRoaring);
    std::get<Roaring>(col.rep_) = std::move(roaring).ValueOrDie();
    return col;
  }
  if (tag == static_cast<uint8_t>(BitmapBackend::kBitVector)) {
    uint64_t cardinality = 0;
    LES3_RETURN_NOT_OK(reader->ReadU64(&cardinality));
    auto bits = BitVector::Deserialize(reader, universe_bound);
    if (!bits.ok()) return bits.status();
    BitmapColumn col(BitmapBackend::kBitVector);
    Dense& d = std::get<Dense>(col.rep_);
    d.bits = std::move(bits).ValueOrDie();
    // Empty() and Cardinality() trust this counter; verify it against the
    // actual bits before anything downstream does.
    if (d.bits.Count() != cardinality) {
      return Status::InvalidArgument(
          "dense column cardinality does not match its popcount");
    }
    d.cardinality = cardinality;
    return col;
  }
  return Status::InvalidArgument("unknown bitmap column backend tag " +
                                 std::to_string(tag));
}

std::vector<uint32_t> BitmapColumn::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&](uint32_t v) { out.push_back(v); });
  return out;
}

}  // namespace bitmap
}  // namespace les3
