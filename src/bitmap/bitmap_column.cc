#include "bitmap/bitmap_column.h"

namespace les3 {
namespace bitmap {

std::string ToString(BitmapBackend backend) {
  return backend == BitmapBackend::kRoaring ? "roaring" : "bitvector";
}

Result<BitmapBackend> ParseBitmapBackend(const std::string& name) {
  if (name == "roaring") return BitmapBackend::kRoaring;
  if (name == "bitvector") return BitmapBackend::kBitVector;
  return Status::InvalidArgument("unknown bitmap backend \"" + name +
                                 "\" (known: roaring, bitvector)");
}

BitmapColumn BitmapColumn::FromSorted(
    BitmapBackend backend, const std::vector<uint32_t>& sorted_values) {
  BitmapColumn col(backend);
  if (auto* r = std::get_if<Roaring>(&col.rep_)) {
    *r = Roaring::FromSorted(sorted_values);
  } else {
    Dense& d = std::get<Dense>(col.rep_);
    if (!sorted_values.empty()) {
      d.bits.Resize(static_cast<uint64_t>(sorted_values.back()) + 1);
      for (uint32_t v : sorted_values) d.bits.Set(v);
    }
    d.cardinality = sorted_values.size();
  }
  return col;
}

void BitmapColumn::Add(uint32_t value) {
  if (auto* r = std::get_if<Roaring>(&rep_)) {
    r->Add(value);
    return;
  }
  Dense& d = std::get<Dense>(rep_);
  if (value >= d.bits.size()) d.bits.Resize(static_cast<uint64_t>(value) + 1);
  if (!d.bits.Get(value)) {
    d.bits.Set(value);
    ++d.cardinality;
  }
}

bool BitmapColumn::Contains(uint32_t value) const {
  if (const auto* r = std::get_if<Roaring>(&rep_)) return r->Contains(value);
  const Dense& d = std::get<Dense>(rep_);
  return value < d.bits.size() && d.bits.Get(value);
}

std::vector<uint32_t> BitmapColumn::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&](uint32_t v) { out.push_back(v); });
  return out;
}

}  // namespace bitmap
}  // namespace les3
