// AVX2 specialization of the bitset word-scan accumulate. Compiled with
// -mavx2 per file (CMakeLists.txt); without the flag it degrades to a
// scalar forwarding stub and reports nothing — dispatch never reaches it
// because core/simd_dispatch.cc keys off the verify TU's kAvx2Compiled.

#include "bitmap/kernels_simd.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace les3 {
namespace bitmap {

#if defined(__AVX2__)

void AccumulateWordsAvx2(const uint64_t* words, size_t num_words,
                         uint32_t base, uint32_t* counts, uint32_t weight,
                         size_t counts_size) {
  // Dense words are expanded bit -> lane one byte (8 counters) at a time:
  // broadcast the byte, AND with each lane's selector bit, compare-equal
  // to turn set bits into all-ones lanes, mask the weight, add. Clear
  // lanes receive +0, so the unconditional 8-wide read-modify-write is
  // exact — but it touches all 64 counters of the word, so it is gated on
  // the span being in bounds. Below the density cutoff the per-bit scalar
  // loop wins (fewer dependent adds than 8 vector RMWs).
  constexpr int kDenseCutoff = 8;
  const __m256i vweight = _mm256_set1_epi32(static_cast<int>(weight));
  const __m256i kBitSel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (size_t w = 0; w < num_words; ++w) {
    const uint64_t bits = words[w];
    if (bits == 0) continue;
    const uint32_t word_base = base + (static_cast<uint32_t>(w) << 6);
    if (__builtin_popcountll(bits) < kDenseCutoff ||
        static_cast<size_t>(word_base) + 64 > counts_size) {
      AccumulateWordBits(bits, word_base, counts, weight);
      continue;
    }
    for (int k = 0; k < 8; ++k) {
      const uint32_t byte = static_cast<uint32_t>(bits >> (8 * k)) & 0xFFu;
      if (byte == 0) continue;
      const __m256i sel = _mm256_and_si256(
          _mm256_set1_epi32(static_cast<int>(byte)), kBitSel);
      const __m256i add = _mm256_and_si256(
          _mm256_cmpeq_epi32(sel, kBitSel), vweight);
      uint32_t* p = counts + word_base + 8 * k;
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(p),
          _mm256_add_epi32(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), add));
    }
  }
}

#else  // !defined(__AVX2__)

void AccumulateWordsAvx2(const uint64_t* words, size_t num_words,
                         uint32_t base, uint32_t* counts, uint32_t weight,
                         size_t counts_size) {
  (void)counts_size;
  for (size_t w = 0; w < num_words; ++w) {
    if (words[w] != 0) {
      AccumulateWordBits(words[w], base + (static_cast<uint32_t>(w) << 6),
                         counts, weight);
    }
  }
}

#endif  // defined(__AVX2__)

}  // namespace bitmap
}  // namespace les3
