// Byte-level primitives for the snapshot subsystem: a little-endian
// ByteWriter, a bounds-checked ByteReader, and CRC32.
//
// Every multi-byte integer is encoded little-endian explicitly (not via
// memcpy of host representation), so snapshot bytes are identical across
// platforms. The reader is the only way snapshot bytes enter the process:
// every Read* checks the remaining length first and returns a Status on
// underflow — malformed input can produce errors, never out-of-bounds
// reads (the corruption tests run this under ASan+UBSan).

#ifndef LES3_PERSIST_BYTES_H_
#define LES3_PERSIST_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace les3 {
namespace persist {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `n` bytes. Chainable via
/// `seed` (pass the previous return value to continue a running checksum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// \brief Append-only little-endian encoder backing one snapshot buffer.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  /// Floats are stored as the little-endian bytes of their IEEE-754 bit
  /// pattern.
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteBytes(const void* data, size_t n);
  /// u32 length followed by the raw bytes.
  void WriteString(const std::string& s);

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }

  /// Overwrites 4 bytes at `pos` (patching a length/checksum slot written
  /// earlier); `pos + 4` must not exceed size().
  void PatchU32(size_t pos, uint32_t v);

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
///
/// The buffer must outlive the reader. All methods return OutOfRange once
/// the requested bytes exceed what remains; the cursor does not advance on
/// failure.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

  Status ReadU8(uint8_t* v);
  Status ReadU16(uint16_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadF32(float* v);
  Status ReadF64(double* v);
  Status ReadBytes(void* out, size_t n);
  /// Reads a u32 length then that many bytes; rejects lengths above
  /// `max_len` before touching the payload (no attacker-sized allocations).
  Status ReadString(std::string* s, size_t max_len = 4096);
  Status Skip(size_t n);

  /// Borrowed view of the next `n` bytes; advances the cursor.
  Status ReadSpan(const uint8_t** out, size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace persist
}  // namespace les3

#endif  // LES3_PERSIST_BYTES_H_
