#include "persist/snapshot.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace les3 {
namespace persist {

namespace {

// Hard ceilings on claimed element counts, checked against the actual
// remaining payload bytes before any allocation: a corrupted count can
// never make the loader allocate more than the (already CRC-verified)
// chunk could possibly hold.
constexpr size_t kMaxBackendNameLen = 64;

void BeginChunk(ChunkType type, ByteWriter* out, size_t* payload_start) {
  out->WriteU32(static_cast<uint32_t>(type));
  out->WriteU64(0);  // payload length, patched in EndChunk
  *payload_start = out->size();
}

void EndChunk(ByteWriter* out, size_t payload_start) {
  size_t payload_len = out->size() - payload_start;
  // Patch the u64 length (low word first; snapshots stay far below 4 GiB
  // per chunk but the format field is 64-bit).
  out->PatchU32(payload_start - 8, static_cast<uint32_t>(payload_len));
  out->PatchU32(payload_start - 4, static_cast<uint32_t>(
                                       static_cast<uint64_t>(payload_len) >>
                                       32));
  out->WriteU32(
      Crc32(out->data().data() + payload_start, payload_len));
}

void EncodeMeta(const SnapshotMeta& meta, uint32_t version, ByteWriter* out) {
  out->WriteString(meta.backend);
  out->WriteU8(static_cast<uint8_t>(meta.measure));
  out->WriteU8(static_cast<uint8_t>(meta.bitmap_backend));
  out->WriteU32(meta.num_groups);
  out->WriteU64(meta.num_sets);
  out->WriteU32(meta.num_tokens);
  // The shard count is a v2 addition; v1 META stays byte-identical to what
  // older builds wrote (the golden test holds the writer to that).
  if (version >= kSnapshotVersionSharded) out->WriteU32(meta.num_shards);
}

void EncodeDatabase(const SetDatabase& db, ByteWriter* out) {
  out->WriteU32(db.num_tokens());
  out->WriteU32(static_cast<uint32_t>(db.size()));
  // Tombstoned ids serialize as zero-token entries (their views are
  // empty), so arena garbage is physically dropped here — this IS the
  // database half of save-time compaction. Which zero-token entries are
  // tombstones is recorded by the PART chunk's kInvalidGroup sentinels.
  for (SetId i = 0; i < db.size(); ++i) {
    SetView s = db.set(i);
    out->WriteU32(static_cast<uint32_t>(s.size()));
    for (TokenId t : s) out->WriteU32(t);
  }
}

/// Set sizes of the slice a local Tgm covers, read off the decoded DB
/// chunk: all sets for a single-index snapshot, every S-th starting at `s`
/// for shard s of a v2 snapshot. Tgm::Deserialize uses them to re-derive
/// the in-memory (size, id) member order — never persisted in the format.
std::vector<uint32_t> SliceSetSizes(const SetDatabase& db, uint32_t s,
                                    uint32_t num_shards) {
  std::vector<uint32_t> sizes;
  sizes.reserve(db.size() / num_shards + 1);
  for (uint64_t gid = s; gid < db.size(); gid += num_shards) {
    sizes.push_back(static_cast<uint32_t>(
        db.set_size(static_cast<SetId>(gid))));
  }
  return sizes;
}

void EncodePartition(const tgm::Tgm& tgm, ByteWriter* out) {
  out->WriteU32(tgm.num_groups());
  const auto& assignment = tgm.group_assignment();
  out->WriteU32(static_cast<uint32_t>(assignment.size()));
  for (GroupId g : assignment) out->WriteU32(g);
}

void EncodeModels(const std::vector<l2p::CascadeModelSnapshot>& models,
                  ByteWriter* out) {
  out->WriteU32(static_cast<uint32_t>(models.size()));
  for (const auto& m : models) {
    out->WriteU32(m.level);
    out->WriteU32(m.group);
    out->WriteF32(m.threshold);
    out->WriteU8(m.routed_by_threshold ? 1 : 0);
    out->WriteU32(static_cast<uint32_t>(m.layer_sizes.size()));
    for (uint32_t s : m.layer_sizes) out->WriteU32(s);
    out->WriteU32(static_cast<uint32_t>(m.params.size()));
    for (float p : m.params) out->WriteF32(p);
  }
}

Status DecodeMeta(ByteReader* reader, uint32_t version, SnapshotMeta* meta) {
  LES3_RETURN_NOT_OK(reader->ReadString(&meta->backend, kMaxBackendNameLen));
  uint8_t measure = 0, bitmap_backend = 0;
  LES3_RETURN_NOT_OK(reader->ReadU8(&measure));
  LES3_RETURN_NOT_OK(reader->ReadU8(&bitmap_backend));
  if (measure > static_cast<uint8_t>(SimilarityMeasure::kContainment)) {
    return Status::InvalidArgument("unknown similarity measure tag " +
                                   std::to_string(measure));
  }
  if (bitmap_backend >
      static_cast<uint8_t>(bitmap::BitmapBackend::kBitVector)) {
    return Status::InvalidArgument("unknown bitmap backend tag " +
                                   std::to_string(bitmap_backend));
  }
  meta->measure = static_cast<SimilarityMeasure>(measure);
  meta->bitmap_backend = static_cast<bitmap::BitmapBackend>(bitmap_backend);
  LES3_RETURN_NOT_OK(reader->ReadU32(&meta->num_groups));
  LES3_RETURN_NOT_OK(reader->ReadU64(&meta->num_sets));
  LES3_RETURN_NOT_OK(reader->ReadU32(&meta->num_tokens));
  if (version >= kSnapshotVersionSharded) {
    LES3_RETURN_NOT_OK(reader->ReadU32(&meta->num_shards));
    if (meta->num_shards == 0) {
      return Status::InvalidArgument("sharded snapshot declares 0 shards");
    }
  }
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes in META chunk");
  }
  return Status::OK();
}

Status DecodeDatabase(ByteReader* reader, SetDatabase* db) {
  uint32_t num_tokens = 0, num_sets = 0;
  LES3_RETURN_NOT_OK(reader->ReadU32(&num_tokens));
  LES3_RETURN_NOT_OK(reader->ReadU32(&num_sets));
  // Each set costs at least 4 bytes (its length field).
  if (num_sets > reader->remaining() / 4) {
    return Status::OutOfRange("set count " + std::to_string(num_sets) +
                              " exceeds what the chunk can hold");
  }
  *db = SetDatabase(num_tokens);
  for (uint32_t i = 0; i < num_sets; ++i) {
    uint32_t len = 0;
    LES3_RETURN_NOT_OK(reader->ReadU32(&len));
    if (len > reader->remaining() / 4) {
      return Status::OutOfRange("set " + std::to_string(i) + " length " +
                                std::to_string(len) +
                                " exceeds what the chunk can hold");
    }
    std::vector<TokenId> tokens(len);
    for (uint32_t j = 0; j < len; ++j) {
      LES3_RETURN_NOT_OK(reader->ReadU32(&tokens[j]));
      // Sorted storage is the SetRecord invariant every similarity kernel
      // assumes; token ids must also stay inside the declared universe.
      if (j > 0 && tokens[j] < tokens[j - 1]) {
        return Status::InvalidArgument("set " + std::to_string(i) +
                                       " tokens not sorted ascending");
      }
      if (tokens[j] >= num_tokens) {
        return Status::OutOfRange("set " + std::to_string(i) + " token " +
                                  std::to_string(tokens[j]) +
                                  " outside the declared universe of " +
                                  std::to_string(num_tokens));
      }
    }
    db->AddSet(SetRecord::FromSortedTokens(std::move(tokens)));
  }
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes in DB chunk");
  }
  return Status::OK();
}

Status DecodePartition(ByteReader* reader, bool allow_tombstones,
                       uint32_t* num_groups,
                       std::vector<GroupId>* assignment) {
  uint32_t num_sets = 0;
  LES3_RETURN_NOT_OK(reader->ReadU32(num_groups));
  LES3_RETURN_NOT_OK(reader->ReadU32(&num_sets));
  if (num_sets > reader->remaining() / 4) {
    return Status::OutOfRange("assignment count " + std::to_string(num_sets) +
                              " exceeds what the chunk can hold");
  }
  assignment->resize(num_sets);
  for (uint32_t i = 0; i < num_sets; ++i) {
    LES3_RETURN_NOT_OK(reader->ReadU32(&(*assignment)[i]));
    // A kInvalidGroup sentinel marks a tombstoned id and is only legal
    // when the header flag announced tombstones; everything else is
    // range-checked (against num_groups) in Tgm::Deserialize.
    if ((*assignment)[i] == kInvalidGroup && !allow_tombstones) {
      return Status::InvalidArgument(
          "PART entry " + std::to_string(i) +
          " is a tombstone sentinel but the header tombstone flag is unset");
    }
  }
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes in PART chunk");
  }
  return Status::OK();
}

Status DecodeModels(ByteReader* reader,
                    std::vector<l2p::CascadeModelSnapshot>* models) {
  uint32_t num_models = 0;
  LES3_RETURN_NOT_OK(reader->ReadU32(&num_models));
  if (num_models > reader->remaining() / 16) {
    return Status::OutOfRange("model count " + std::to_string(num_models) +
                              " exceeds what the chunk can hold");
  }
  models->resize(num_models);
  for (auto& m : *models) {
    LES3_RETURN_NOT_OK(reader->ReadU32(&m.level));
    LES3_RETURN_NOT_OK(reader->ReadU32(&m.group));
    LES3_RETURN_NOT_OK(reader->ReadF32(&m.threshold));
    uint8_t routed = 0;
    LES3_RETURN_NOT_OK(reader->ReadU8(&routed));
    if (routed > 1) {
      return Status::InvalidArgument("model routing flag must be 0 or 1");
    }
    m.routed_by_threshold = routed != 0;
    uint32_t num_layers = 0;
    LES3_RETURN_NOT_OK(reader->ReadU32(&num_layers));
    if (num_layers < 2 || num_layers > reader->remaining() / 4) {
      return Status::InvalidArgument("model layer count " +
                                     std::to_string(num_layers) +
                                     " invalid");
    }
    m.layer_sizes.resize(num_layers);
    uint64_t expected_params = 0;
    for (uint32_t l = 0; l < num_layers; ++l) {
      LES3_RETURN_NOT_OK(reader->ReadU32(&m.layer_sizes[l]));
      if (m.layer_sizes[l] == 0 || m.layer_sizes[l] > (1u << 20)) {
        return Status::InvalidArgument("model layer size " +
                                       std::to_string(m.layer_sizes[l]) +
                                       " invalid");
      }
      if (l > 0) {
        // Weights (in x out) plus biases (out) per layer transition.
        expected_params += static_cast<uint64_t>(m.layer_sizes[l - 1] + 1) *
                           m.layer_sizes[l];
      }
    }
    uint32_t num_params = 0;
    LES3_RETURN_NOT_OK(reader->ReadU32(&num_params));
    if (num_params != expected_params ||
        num_params > reader->remaining() / 4) {
      return Status::InvalidArgument(
          "model parameter count " + std::to_string(num_params) +
          " does not match its layer sizes");
    }
    m.params.resize(num_params);
    for (uint32_t p = 0; p < num_params; ++p) {
      LES3_RETURN_NOT_OK(reader->ReadF32(&m.params[p]));
    }
  }
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes in L2P chunk");
  }
  return Status::OK();
}

/// Reads one chunk's framing — type, length (validated against the
/// remaining file), payload span, and CRC — shared by both version
/// decoders so every format speaks the same robustness contract.
Status NextChunk(ByteReader* reader, uint32_t* type, const uint8_t** payload,
                 uint64_t* payload_len) {
  if (reader->AtEnd()) {
    return Status::InvalidArgument(
        "snapshot ends without an END chunk (truncated?)");
  }
  LES3_RETURN_NOT_OK(reader->ReadU32(type));
  LES3_RETURN_NOT_OK(reader->ReadU64(payload_len));
  // The payload plus its 4-byte checksum must fit in what remains; an
  // oversized length field is rejected here, before any use.
  if (*payload_len > reader->remaining() ||
      reader->remaining() - *payload_len < 4) {
    return Status::OutOfRange("chunk length " + std::to_string(*payload_len) +
                              " exceeds the file size");
  }
  LES3_RETURN_NOT_OK(reader->ReadSpan(payload, *payload_len));
  uint32_t stored_crc = 0;
  LES3_RETURN_NOT_OK(reader->ReadU32(&stored_crc));
  if (Crc32(*payload, *payload_len) != stored_crc) {
    return Status::IOError("checksum mismatch in chunk type " +
                           std::to_string(*type) + " (corrupted snapshot)");
  }
  return Status::OK();
}

Result<LoadedSnapshot> DecodeSnapshotV1(ByteReader& reader,
                                        bool allow_tombstones) {
  LoadedSnapshot snapshot;
  snapshot.version = kSnapshotVersion;
  bool have_meta = false, have_db = false, have_partition = false,
       have_columns = false, have_models = false, have_end = false;
  SetDatabase db;
  uint32_t num_groups = 0;
  // TGMC needs the partition; stash its payload until both are seen.
  const uint8_t* columns_payload = nullptr;
  size_t columns_len = 0;

  while (!have_end) {
    uint32_t type = 0;
    uint64_t payload_len = 0;
    const uint8_t* payload = nullptr;
    LES3_RETURN_NOT_OK(NextChunk(&reader, &type, &payload, &payload_len));
    ByteReader chunk(payload, payload_len);
    auto mark_once = [&](bool* seen, const char* name) -> Status {
      if (*seen) {
        return Status::InvalidArgument(std::string("duplicate ") + name +
                                       " chunk");
      }
      *seen = true;
      return Status::OK();
    };
    switch (static_cast<ChunkType>(type)) {
      case ChunkType::kMeta:
        LES3_RETURN_NOT_OK(mark_once(&have_meta, "META"));
        LES3_RETURN_NOT_OK(
            DecodeMeta(&chunk, kSnapshotVersion, &snapshot.meta));
        break;
      case ChunkType::kDatabase:
        LES3_RETURN_NOT_OK(mark_once(&have_db, "DB"));
        LES3_RETURN_NOT_OK(DecodeDatabase(&chunk, &db));
        break;
      case ChunkType::kPartition:
        LES3_RETURN_NOT_OK(mark_once(&have_partition, "PART"));
        LES3_RETURN_NOT_OK(DecodePartition(&chunk, allow_tombstones,
                                           &num_groups, &snapshot.assignment));
        break;
      case ChunkType::kTgmColumns:
        LES3_RETURN_NOT_OK(mark_once(&have_columns, "TGMC"));
        columns_payload = payload;
        columns_len = payload_len;
        break;
      case ChunkType::kL2pModels:
        LES3_RETURN_NOT_OK(mark_once(&have_models, "L2P"));
        LES3_RETURN_NOT_OK(DecodeModels(&chunk, &snapshot.models));
        break;
      case ChunkType::kEnd:
        if (payload_len != 0) {
          return Status::InvalidArgument("END chunk must be empty");
        }
        have_end = true;
        break;
      default:
        // Unknown chunks are an error, not skippable: format changes bump
        // the version, so an unknown type here is corruption.
        return Status::InvalidArgument("unknown chunk type " +
                                       std::to_string(type));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after the END chunk");
  }
  if (!have_meta || !have_db || !have_partition || !have_columns) {
    return Status::InvalidArgument(
        "snapshot is missing a required chunk (META, DB, PART, TGMC)");
  }

  // Cross-chunk consistency. META's shape fields are redundant with the
  // payload chunks by construction; a disagreement means the file was
  // stitched together or corrupted in a way the per-chunk CRCs cannot see.
  if (snapshot.meta.backend != "les3" && snapshot.meta.backend != "disk_les3") {
    return Status::InvalidArgument("snapshot backend \"" +
                                   snapshot.meta.backend +
                                   "\" is not a les3-family engine");
  }
  if (db.empty()) {
    return Status::InvalidArgument("snapshot contains an empty database");
  }
  if (snapshot.meta.num_sets != db.size() ||
      snapshot.meta.num_tokens != db.num_tokens()) {
    return Status::InvalidArgument(
        "META shape disagrees with the DB chunk");
  }
  if (snapshot.meta.num_groups != num_groups ||
      snapshot.assignment.size() != db.size()) {
    return Status::InvalidArgument(
        "META/PART shape disagrees with the DB chunk");
  }
  // Restore tombstones: the PART sentinel is the authority for which ids
  // are deleted; the writer already dropped their tokens, and a sentinel
  // entry that still carries tokens means the file was stitched together.
  for (SetId i = 0; i < db.size(); ++i) {
    if (snapshot.assignment[i] != kInvalidGroup) continue;
    if (db.set_size(i) != 0) {
      return Status::InvalidArgument(
          "tombstoned set " + std::to_string(i) + " carries tokens");
    }
    db.DeleteSet(i);
  }

  ByteReader columns(columns_payload, columns_len);
  auto tgm = tgm::Tgm::Deserialize(snapshot.assignment, num_groups,
                                   SliceSetSizes(db, 0, 1), &columns);
  if (!tgm.ok()) {
    return Status::FromCode(tgm.status().code(),
                            "TGMC chunk: " + tgm.status().message());
  }
  if (!columns.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in TGMC chunk");
  }
  snapshot.tgm = std::move(tgm).ValueOrDie();
  if (snapshot.tgm.bitmap_backend() != snapshot.meta.bitmap_backend) {
    return Status::InvalidArgument(
        "META bitmap backend disagrees with the TGMC chunk");
  }
  if (snapshot.tgm.num_token_columns() > db.num_tokens()) {
    return Status::InvalidArgument(
        "TGMC chunk has more columns than the token universe");
  }
  snapshot.db = std::make_shared<SetDatabase>(std::move(db));
  return snapshot;
}

/// Global set ids of shard `s` under the id-mod-S hash split of a database
/// of `num_sets` sets: s, s+S, s+2S, ... — so the shard holds exactly
/// ceil((num_sets - s) / S) sets.
uint64_t ShardLocalCount(uint64_t num_sets, uint32_t s, uint32_t num_shards) {
  if (s >= num_sets) return 0;
  return (num_sets - s + num_shards - 1) / num_shards;
}

Result<LoadedSnapshot> DecodeSnapshotV2(ByteReader& reader,
                                        bool allow_tombstones) {
  LoadedSnapshot snapshot;
  snapshot.version = kSnapshotVersionSharded;
  bool have_meta = false, have_db = false, have_end = false;
  SetDatabase db;
  // The writer emits one PART immediately followed by that shard's TGMC;
  // the pending partition bridges the pair. Column payloads are only
  // stashed here (spans into the caller's buffer) — decoding waits until
  // after the loop, when the DB chunk is certainly available to supply the
  // set sizes the member order is re-derived from.
  struct PendingShard {
    std::vector<GroupId> assignment;
    uint32_t num_groups = 0;
    const uint8_t* columns_payload = nullptr;
    uint64_t columns_len = 0;
  };
  std::vector<PendingShard> pending_shards;
  std::vector<GroupId> pending_assignment;
  uint32_t pending_groups = 0;
  bool have_pending_part = false;

  while (!have_end) {
    uint32_t type = 0;
    uint64_t payload_len = 0;
    const uint8_t* payload = nullptr;
    LES3_RETURN_NOT_OK(NextChunk(&reader, &type, &payload, &payload_len));
    ByteReader chunk(payload, payload_len);
    switch (static_cast<ChunkType>(type)) {
      case ChunkType::kMeta:
        if (have_meta) {
          return Status::InvalidArgument("duplicate META chunk");
        }
        have_meta = true;
        LES3_RETURN_NOT_OK(
            DecodeMeta(&chunk, kSnapshotVersionSharded, &snapshot.meta));
        break;
      case ChunkType::kDatabase:
        if (have_db) {
          return Status::InvalidArgument("duplicate DB chunk");
        }
        have_db = true;
        LES3_RETURN_NOT_OK(DecodeDatabase(&chunk, &db));
        break;
      case ChunkType::kPartition:
        if (have_pending_part) {
          return Status::InvalidArgument(
              "PART chunk not followed by its shard's TGMC chunk");
        }
        LES3_RETURN_NOT_OK(DecodePartition(&chunk, allow_tombstones,
                                           &pending_groups,
                                           &pending_assignment));
        have_pending_part = true;
        break;
      case ChunkType::kTgmColumns: {
        if (!have_pending_part) {
          return Status::InvalidArgument(
              "TGMC chunk without a preceding PART chunk");
        }
        PendingShard shard;
        shard.assignment = std::move(pending_assignment);
        shard.num_groups = pending_groups;
        shard.columns_payload = payload;
        shard.columns_len = payload_len;
        pending_shards.push_back(std::move(shard));
        pending_assignment.clear();
        have_pending_part = false;
        break;
      }
      case ChunkType::kL2pModels:
        // The sharded engine does not persist trained cascades (each shard
        // would need its own); a v2 file carrying one is malformed.
        return Status::InvalidArgument(
            "sharded snapshots do not carry L2P chunks");
      case ChunkType::kEnd:
        if (payload_len != 0) {
          return Status::InvalidArgument("END chunk must be empty");
        }
        have_end = true;
        break;
      default:
        return Status::InvalidArgument("unknown chunk type " +
                                       std::to_string(type));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after the END chunk");
  }
  if (!have_meta || !have_db || pending_shards.empty()) {
    return Status::InvalidArgument(
        "snapshot is missing a required chunk (META, DB, PART, TGMC)");
  }
  if (have_pending_part) {
    return Status::InvalidArgument(
        "PART chunk not followed by its shard's TGMC chunk");
  }

  // Cross-chunk consistency: META against the DB chunk, the declared shard
  // count against the PART/TGMC pairs, and every shard's shape against the
  // deterministic id-mod-S split the engine will re-derive on open.
  if (snapshot.meta.backend != "sharded_les3") {
    return Status::InvalidArgument("snapshot backend \"" +
                                   snapshot.meta.backend +
                                   "\" is not the sharded engine");
  }
  if (db.empty()) {
    return Status::InvalidArgument("snapshot contains an empty database");
  }
  if (snapshot.meta.num_sets != db.size() ||
      snapshot.meta.num_tokens != db.num_tokens()) {
    return Status::InvalidArgument(
        "META shape disagrees with the DB chunk");
  }
  if (snapshot.meta.num_shards != pending_shards.size()) {
    return Status::InvalidArgument(
        "META declares " + std::to_string(snapshot.meta.num_shards) +
        " shards but the file holds " +
        std::to_string(pending_shards.size()) + " PART/TGMC pairs");
  }
  uint64_t total_groups = 0;
  for (size_t s = 0; s < pending_shards.size(); ++s) {
    PendingShard& pending = pending_shards[s];
    uint64_t expected = ShardLocalCount(db.size(), static_cast<uint32_t>(s),
                                        snapshot.meta.num_shards);
    if (pending.assignment.size() != expected) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " PART covers " +
          std::to_string(pending.assignment.size()) + " sets; the id-mod-" +
          std::to_string(snapshot.meta.num_shards) + " split assigns it " +
          std::to_string(expected));
    }
    // Restore tombstones, mapping shard-local index l to global id
    // l*S + s (same rules as the single-index decoder).
    for (size_t l = 0; l < pending.assignment.size(); ++l) {
      if (pending.assignment[l] != kInvalidGroup) continue;
      const SetId gid = static_cast<SetId>(
          l * snapshot.meta.num_shards + s);
      if (db.set_size(gid) != 0) {
        return Status::InvalidArgument(
            "tombstoned set " + std::to_string(gid) + " carries tokens");
      }
      db.DeleteSet(gid);
    }
    ByteReader columns(pending.columns_payload, pending.columns_len);
    auto tgm = tgm::Tgm::Deserialize(
        pending.assignment, pending.num_groups,
        SliceSetSizes(db, static_cast<uint32_t>(s), snapshot.meta.num_shards),
        &columns);
    if (!tgm.ok()) {
      return Status::FromCode(tgm.status().code(),
                              "shard " + std::to_string(s) +
                                  " TGMC chunk: " + tgm.status().message());
    }
    if (!columns.AtEnd()) {
      return Status::InvalidArgument("trailing bytes in TGMC chunk");
    }
    ShardSnapshot shard;
    shard.assignment = std::move(pending.assignment);
    shard.tgm = std::move(tgm).ValueOrDie();
    if (shard.tgm.num_token_columns() > db.num_tokens()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " TGMC chunk has more columns than the token universe");
    }
    if (shard.tgm.bitmap_backend() != snapshot.meta.bitmap_backend) {
      return Status::InvalidArgument(
          "META bitmap backend disagrees with the TGMC chunk");
    }
    total_groups += shard.tgm.num_groups();
    snapshot.shards.push_back(std::move(shard));
  }
  if (total_groups != snapshot.meta.num_groups) {
    return Status::InvalidArgument(
        "META group count disagrees with the per-shard PART chunks");
  }
  snapshot.db = std::make_shared<SetDatabase>(std::move(db));
  return snapshot;
}

}  // namespace

void EncodeSnapshot(const SnapshotMeta& meta, const SetDatabase& db,
                    const tgm::Tgm& tgm,
                    const std::vector<l2p::CascadeModelSnapshot>& models,
                    ByteWriter* out) {
  out->WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  out->WriteU32(kSnapshotVersion);
  out->WriteU32(db.num_deleted() > 0 ? kSnapshotFlagTombstones : 0u);

  SnapshotMeta filled = meta;
  filled.num_groups = tgm.num_groups();
  filled.num_sets = db.size();
  filled.num_tokens = db.num_tokens();
  filled.num_shards = 1;

  size_t start = 0;
  BeginChunk(ChunkType::kMeta, out, &start);
  EncodeMeta(filled, kSnapshotVersion, out);
  EndChunk(out, start);

  BeginChunk(ChunkType::kDatabase, out, &start);
  EncodeDatabase(db, out);
  EndChunk(out, start);

  BeginChunk(ChunkType::kPartition, out, &start);
  EncodePartition(tgm, out);
  EndChunk(out, start);

  BeginChunk(ChunkType::kTgmColumns, out, &start);
  // Save-time column compaction: once mutations have left stale bits or
  // tombstones behind, write exact recomputed columns instead of the live
  // container state. A never-mutated index keeps the exact-container path
  // (and stays byte-identical to what older builds wrote).
  if (tgm.TotalDirt() > 0 || db.num_deleted() > 0) {
    tgm.SerializeCompactedColumns(db, out);
  } else {
    tgm.SerializeColumns(out);
  }
  EndChunk(out, start);

  if (!models.empty()) {
    BeginChunk(ChunkType::kL2pModels, out, &start);
    EncodeModels(models, out);
    EndChunk(out, start);
  }

  BeginChunk(ChunkType::kEnd, out, &start);
  EndChunk(out, start);
}

void EncodeShardedSnapshot(const SnapshotMeta& meta, const SetDatabase& db,
                           const std::vector<const tgm::Tgm*>& shard_tgms,
                           const std::vector<const SetDatabase*>& shard_dbs,
                           ByteWriter* out) {
  out->WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  out->WriteU32(kSnapshotVersionSharded);
  out->WriteU32(db.num_deleted() > 0 ? kSnapshotFlagTombstones : 0u);

  SnapshotMeta filled = meta;
  filled.num_sets = db.size();
  filled.num_tokens = db.num_tokens();
  filled.num_shards = static_cast<uint32_t>(shard_tgms.size());
  filled.num_groups = 0;
  for (const tgm::Tgm* tgm : shard_tgms) filled.num_groups += tgm->num_groups();

  size_t start = 0;
  BeginChunk(ChunkType::kMeta, out, &start);
  EncodeMeta(filled, kSnapshotVersionSharded, out);
  EndChunk(out, start);

  BeginChunk(ChunkType::kDatabase, out, &start);
  EncodeDatabase(db, out);
  EndChunk(out, start);

  for (size_t s = 0; s < shard_tgms.size(); ++s) {
    const tgm::Tgm* tgm = shard_tgms[s];
    BeginChunk(ChunkType::kPartition, out, &start);
    EncodePartition(*tgm, out);
    EndChunk(out, start);

    BeginChunk(ChunkType::kTgmColumns, out, &start);
    // Same compaction rule as EncodeSnapshot, per shard against its own
    // local slice (the compactor walks local member ids).
    const SetDatabase& local = *shard_dbs[s];
    if (tgm->TotalDirt() > 0 || local.num_deleted() > 0) {
      tgm->SerializeCompactedColumns(local, out);
    } else {
      tgm->SerializeColumns(out);
    }
    EndChunk(out, start);
  }

  BeginChunk(ChunkType::kEnd, out, &start);
  EndChunk(out, start);
}

Result<LoadedSnapshot> DecodeSnapshot(const void* data, size_t size) {
  ByteReader reader(data, size);
  char magic[sizeof(kSnapshotMagic)];
  LES3_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "not a LES3 snapshot (bad magic; expected \"LES3SNAP\")");
  }
  uint32_t version = 0, flags = 0;
  LES3_RETURN_NOT_OK(reader.ReadU32(&version));
  LES3_RETURN_NOT_OK(reader.ReadU32(&flags));
  if (version < kSnapshotVersion || version > kMaxSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kSnapshotVersion) +
        ".." + std::to_string(kMaxSnapshotVersion) +
        "; re-save the index with a matching build)");
  }
  if ((flags & ~kSnapshotFlagTombstones) != 0) {
    return Status::InvalidArgument("unsupported snapshot flags");
  }
  const bool tombstones = (flags & kSnapshotFlagTombstones) != 0;
  if (version == kSnapshotVersionSharded) {
    return DecodeSnapshotV2(reader, tombstones);
  }
  return DecodeSnapshotV1(reader, tombstones);
}

Status SaveSnapshot(const std::string& path, const SnapshotMeta& meta,
                    const SetDatabase& db, const tgm::Tgm& tgm,
                    const std::vector<l2p::CascadeModelSnapshot>& models) {
  ByteWriter writer;
  EncodeSnapshot(meta, db, tgm, models, &writer);
  return WriteFileBytes(path, writer.data());
}

Status SaveShardedSnapshot(const std::string& path, const SnapshotMeta& meta,
                           const SetDatabase& db,
                           const std::vector<const tgm::Tgm*>& shard_tgms,
                           const std::vector<const SetDatabase*>& shard_dbs) {
  ByteWriter writer;
  EncodeShardedSnapshot(meta, db, shard_tgms, shard_dbs, &writer);
  return WriteFileBytes(path, writer.data());
}

Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  std::vector<uint8_t> bytes;
  LES3_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  auto snapshot = DecodeSnapshot(bytes.data(), bytes.size());
  if (!snapshot.ok()) {
    return Status::FromCode(snapshot.status().code(),
                            path + ": " + snapshot.status().message());
  }
  return snapshot;
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  out->clear();
  uint8_t buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read failed: " + path);
  return Status::OK();
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

}  // namespace persist
}  // namespace les3
