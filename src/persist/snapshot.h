// Versioned index snapshots: save a built LES3 index to one file and
// reload it without any partitioning or training work.
//
// LES3's construction cost is dominated by learning the partitioning
// (paper Figure 7), so the learned index must be a deployable artifact: a
// process restart reopens the snapshot in milliseconds instead of
// retraining for minutes. The file carries everything a les3-family engine
// needs — the set database, the partition assignment, the TGM bitmap
// columns in their exact container state (either bitmap backend), the
// similarity measure, and optionally the trained L2P cascade weights — in
// a chunked, checksummed, versioned binary format specified in
// docs/snapshot_format.md.
//
// Robustness contract: LoadSnapshot never trusts the input. Every read is
// bounds-checked (persist/bytes.h), every chunk payload is CRC-verified
// before parsing, and every structural invariant the query kernels rely on
// (group ids < num_groups, sorted tokens, bitmap container shape) is
// re-validated — truncation, bit flips, bad headers, and oversized chunk
// lengths all come back as a Status, never a crash or an out-of-bounds
// access. The corruption tests run this promise under ASan+UBSan.
//
// Callers normally go through the api layer (SearchEngine::Save /
// EngineBuilder::Open); this header is the format implementation.

#ifndef LES3_PERSIST_SNAPSHOT_H_
#define LES3_PERSIST_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "bitmap/bitmap_column.h"
#include "core/database.h"
#include "persist/bytes.h"
#include "core/similarity.h"
#include "l2p/cascade.h"
#include "tgm/tgm.h"
#include "util/status.h"

namespace les3 {
namespace persist {

/// File magic: the first 8 bytes of every snapshot.
inline constexpr char kSnapshotMagic[8] = {'L', 'E', 'S', '3',
                                           'S', 'N', 'A', 'P'};

/// Single-index format version. Bump on ANY layout change; readers reject
/// files written by an unknown version with an explicit error (no silent
/// best-effort parsing of future formats).
inline constexpr uint32_t kSnapshotVersion = 1;

/// Sharded format version (shard/sharded_engine.h): same chunk framing,
/// but the META chunk carries a shard count and the PART/TGMC pair repeats
/// once per shard, in shard order. Version 1 files stay readable — the
/// header version selects the decode path.
inline constexpr uint32_t kSnapshotVersionSharded = 2;

/// Highest version this build reads.
inline constexpr uint32_t kMaxSnapshotVersion = kSnapshotVersionSharded;

/// Header flag bit: the snapshot may contain tombstoned (deleted) ids —
/// kInvalidGroup sentinels in PART chunks and zero-token entries in the
/// DB chunk (docs/snapshot_format.md, "Tombstones"). The deliberate
/// format choice for mutability: version numbers keep meaning layout
/// (1 = single index, 2 = sharded), deletions set this orthogonal flag,
/// and a database that never saw a delete produces a byte-identical
/// flagless file (the golden test holds the writer to that). Builds
/// predating the flag reject flagged files outright ("unsupported
/// snapshot flags") instead of resurrecting tombstones.
inline constexpr uint32_t kSnapshotFlagTombstones = 1;

/// Chunk identifiers (docs/snapshot_format.md).
enum class ChunkType : uint32_t {
  kEnd = 0,         // terminator, empty payload, required last
  kMeta = 1,        // backend name, measure, bitmap backend, shape
  kDatabase = 2,    // the set database
  kPartition = 3,   // num_groups + per-set assignment
  kTgmColumns = 4,  // TGM bitmap columns, exact container state
  kL2pModels = 5,   // optional: trained cascade MLP weights
};

/// \brief Engine-level facts stored in the META chunk.
struct SnapshotMeta {
  std::string backend;  // "les3", "disk_les3", or "sharded_les3"
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  bitmap::BitmapBackend bitmap_backend = bitmap::BitmapBackend::kRoaring;
  uint32_t num_groups = 0;   // v2: summed over all shards
  uint64_t num_sets = 0;
  uint32_t num_tokens = 0;
  uint32_t num_shards = 1;   // encoded (and > 1 only) in v2 files
};

/// One shard of a v2 snapshot: the shard's partition over its local set
/// ids plus its TGM, ready to query. Which global ids belong to the shard
/// is not stored — it is the deterministic hash split (id mod num_shards),
/// re-derived from the DB chunk on load.
struct ShardSnapshot {
  std::vector<GroupId> assignment;  // per local set id
  tgm::Tgm tgm;
};

/// \brief Everything LoadSnapshot reconstructs; feeds the api layer's
/// snapshot engines directly (no partitioning or training involved).
struct LoadedSnapshot {
  uint32_t version = kSnapshotVersion;
  SnapshotMeta meta;
  std::shared_ptr<SetDatabase> db;
  // v1 (single-index) payload:
  std::vector<GroupId> assignment;  // per set; what the PART chunk held
  tgm::Tgm tgm;                     // columns + membership, ready to query
  std::vector<l2p::CascadeModelSnapshot> models;  // empty if not persisted
  // v2 (sharded) payload: one entry per shard, in shard order.
  std::vector<ShardSnapshot> shards;
};

/// Serializes one snapshot into `out` (exposed separately from the file
/// writer so tests can inspect and corrupt the byte stream directly).
/// `meta.num_sets` / `num_tokens` / `num_groups` are filled from `db` and
/// `tgm`; callers set backend / measure / bitmap_backend.
void EncodeSnapshot(const SnapshotMeta& meta, const SetDatabase& db,
                    const tgm::Tgm& tgm,
                    const std::vector<l2p::CascadeModelSnapshot>& models,
                    ByteWriter* out);

/// Serializes a sharded (version 2) snapshot: the global database plus
/// one PART/TGMC pair per shard, in shard order. `shard_tgms[s]` is shard
/// s's matrix over its local set ids and `shard_dbs[s]` the local slice
/// it indexes (needed for save-time column compaction; with one shard the
/// slice is the global database). `meta.num_shards` must equal
/// `shard_tgms.size()`. Shape fields are filled from `db` and the shard
/// matrices, as in EncodeSnapshot.
void EncodeShardedSnapshot(const SnapshotMeta& meta, const SetDatabase& db,
                           const std::vector<const tgm::Tgm*>& shard_tgms,
                           const std::vector<const SetDatabase*>& shard_dbs,
                           ByteWriter* out);

/// Parses and fully validates a snapshot byte buffer (either version).
Result<LoadedSnapshot> DecodeSnapshot(const void* data, size_t size);

/// EncodeSnapshot + atomic-ish file write (write then rename would need a
/// temp dir policy; this writes directly and reports IO errors).
Status SaveSnapshot(const std::string& path, const SnapshotMeta& meta,
                    const SetDatabase& db, const tgm::Tgm& tgm,
                    const std::vector<l2p::CascadeModelSnapshot>& models);

/// EncodeShardedSnapshot + file write (same policy as SaveSnapshot).
Status SaveShardedSnapshot(const std::string& path, const SnapshotMeta& meta,
                           const SetDatabase& db,
                           const std::vector<const tgm::Tgm*>& shard_tgms,
                           const std::vector<const SetDatabase*>& shard_dbs);

/// Reads the file and decodes it; all failure modes return a Status.
Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

/// Reads a whole file into `out` (shared by LoadSnapshot and the tests
/// that corrupt snapshot bytes). IOError on open/read failure.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path`; IOError on failure.
Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

}  // namespace persist
}  // namespace les3

#endif  // LES3_PERSIST_SNAPSHOT_H_
