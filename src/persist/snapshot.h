// Versioned index snapshots: save a built LES3 index to one file and
// reload it without any partitioning or training work.
//
// LES3's construction cost is dominated by learning the partitioning
// (paper Figure 7), so the learned index must be a deployable artifact: a
// process restart reopens the snapshot in milliseconds instead of
// retraining for minutes. The file carries everything a les3-family engine
// needs — the set database, the partition assignment, the TGM bitmap
// columns in their exact container state (either bitmap backend), the
// similarity measure, and optionally the trained L2P cascade weights — in
// a chunked, checksummed, versioned binary format specified in
// docs/snapshot_format.md.
//
// Robustness contract: LoadSnapshot never trusts the input. Every read is
// bounds-checked (persist/bytes.h), every chunk payload is CRC-verified
// before parsing, and every structural invariant the query kernels rely on
// (group ids < num_groups, sorted tokens, bitmap container shape) is
// re-validated — truncation, bit flips, bad headers, and oversized chunk
// lengths all come back as a Status, never a crash or an out-of-bounds
// access. The corruption tests run this promise under ASan+UBSan.
//
// Callers normally go through the api layer (SearchEngine::Save /
// EngineBuilder::Open); this header is the format implementation.

#ifndef LES3_PERSIST_SNAPSHOT_H_
#define LES3_PERSIST_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "bitmap/bitmap_column.h"
#include "core/database.h"
#include "persist/bytes.h"
#include "core/similarity.h"
#include "l2p/cascade.h"
#include "tgm/tgm.h"
#include "util/status.h"

namespace les3 {
namespace persist {

/// File magic: the first 8 bytes of every snapshot.
inline constexpr char kSnapshotMagic[8] = {'L', 'E', 'S', '3',
                                           'S', 'N', 'A', 'P'};

/// Current format version. Bump on ANY layout change; readers reject files
/// written by a different version with an explicit error (no silent
/// best-effort parsing of future formats).
inline constexpr uint32_t kSnapshotVersion = 1;

/// Chunk identifiers (docs/snapshot_format.md).
enum class ChunkType : uint32_t {
  kEnd = 0,         // terminator, empty payload, required last
  kMeta = 1,        // backend name, measure, bitmap backend, shape
  kDatabase = 2,    // the set database
  kPartition = 3,   // num_groups + per-set assignment
  kTgmColumns = 4,  // TGM bitmap columns, exact container state
  kL2pModels = 5,   // optional: trained cascade MLP weights
};

/// \brief Engine-level facts stored in the META chunk.
struct SnapshotMeta {
  std::string backend;  // "les3" or "disk_les3"
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  bitmap::BitmapBackend bitmap_backend = bitmap::BitmapBackend::kRoaring;
  uint32_t num_groups = 0;
  uint64_t num_sets = 0;
  uint32_t num_tokens = 0;
};

/// \brief Everything LoadSnapshot reconstructs; feeds the api layer's
/// snapshot engines directly (no partitioning or training involved).
struct LoadedSnapshot {
  SnapshotMeta meta;
  std::shared_ptr<SetDatabase> db;
  std::vector<GroupId> assignment;  // per set; what the PART chunk held
  tgm::Tgm tgm;                     // columns + membership, ready to query
  std::vector<l2p::CascadeModelSnapshot> models;  // empty if not persisted
};

/// Serializes one snapshot into `out` (exposed separately from the file
/// writer so tests can inspect and corrupt the byte stream directly).
/// `meta.num_sets` / `num_tokens` / `num_groups` are filled from `db` and
/// `tgm`; callers set backend / measure / bitmap_backend.
void EncodeSnapshot(const SnapshotMeta& meta, const SetDatabase& db,
                    const tgm::Tgm& tgm,
                    const std::vector<l2p::CascadeModelSnapshot>& models,
                    ByteWriter* out);

/// Parses and fully validates a snapshot byte buffer.
Result<LoadedSnapshot> DecodeSnapshot(const void* data, size_t size);

/// EncodeSnapshot + atomic-ish file write (write then rename would need a
/// temp dir policy; this writes directly and reports IO errors).
Status SaveSnapshot(const std::string& path, const SnapshotMeta& meta,
                    const SetDatabase& db, const tgm::Tgm& tgm,
                    const std::vector<l2p::CascadeModelSnapshot>& models);

/// Reads the file and decodes it; all failure modes return a Status.
Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

/// Reads a whole file into `out` (shared by LoadSnapshot and the tests
/// that corrupt snapshot bytes). IOError on open/read failure.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path`; IOError on failure.
Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

}  // namespace persist
}  // namespace les3

#endif  // LES3_PERSIST_SNAPSHOT_H_
