#include "persist/bytes.h"

#include <cstring>

#include "util/logging.h"

namespace les3 {
namespace persist {

namespace {

const uint32_t* Crc32Table() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::WriteU32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void ByteWriter::WriteU64(uint64_t v) {
  WriteU32(static_cast<uint32_t>(v));
  WriteU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::WriteF32(float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(bits);
}

void ByteWriter::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteBytes(s.data(), s.size());
}

void ByteWriter::PatchU32(size_t pos, uint32_t v) {
  LES3_CHECK_LE(pos + 4, buf_.size());
  buf_[pos] = static_cast<uint8_t>(v);
  buf_[pos + 1] = static_cast<uint8_t>(v >> 8);
  buf_[pos + 2] = static_cast<uint8_t>(v >> 16);
  buf_[pos + 3] = static_cast<uint8_t>(v >> 24);
}

Status ByteReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return Status::OutOfRange("byte stream underflow");
  *v = data_[pos_++];
  return Status::OK();
}

Status ByteReader::ReadU16(uint16_t* v) {
  if (remaining() < 2) return Status::OutOfRange("byte stream underflow");
  *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return Status::OutOfRange("byte stream underflow");
  *v = static_cast<uint32_t>(data_[pos_]) |
       (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
       (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
       (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return Status::OutOfRange("byte stream underflow");
  uint32_t lo = 0, hi = 0;
  LES3_RETURN_NOT_OK(ReadU32(&lo));
  LES3_RETURN_NOT_OK(ReadU32(&hi));
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

Status ByteReader::ReadF32(float* v) {
  uint32_t bits = 0;
  LES3_RETURN_NOT_OK(ReadU32(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadF64(double* v) {
  uint64_t bits = 0;
  LES3_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadBytes(void* out, size_t n) {
  if (remaining() < n) return Status::OutOfRange("byte stream underflow");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadString(std::string* s, size_t max_len) {
  uint32_t len = 0;
  size_t saved = pos_;
  LES3_RETURN_NOT_OK(ReadU32(&len));
  if (len > max_len) {
    pos_ = saved;
    return Status::OutOfRange("string length " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_len));
  }
  if (remaining() < len) {
    pos_ = saved;
    return Status::OutOfRange("byte stream underflow");
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Status::OutOfRange("byte stream underflow");
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadSpan(const uint8_t** out, size_t n) {
  if (remaining() < n) return Status::OutOfRange("byte stream underflow");
  *out = data_ + pos_;
  pos_ += n;
  return Status::OK();
}

}  // namespace persist
}  // namespace les3
