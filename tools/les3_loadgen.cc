// les3_loadgen — load generator for les3_serve: replays a query file
// (same one-set-per-line format `les3_cli batch` reads) against a running
// server and reports QPS plus p50/p95/p99 client-side round-trip latency.
//
//   les3_loadgen <queries.txt> knn <k> [flags]
//   les3_loadgen <queries.txt> range <delta> [flags]
//
// Flags:
//   --host A         server address              (default 127.0.0.1)
//   --port N         server port                 (required)
//   --threads N      concurrent client threads   (default 1)
//   --repeat N       passes over the query file per thread (default 1)
//   --open-qps R     open-loop mode: aggregate send rate R requests/s
//                    (default: closed loop — each thread sends the next
//                    request as soon as the previous reply lands)
//   --batch N        pipeline N single-query requests per round trip
//                    (one write, N replies) — keeps the server's pending
//                    queue populated so its executor coalescing
//                    (--batch-window) has groups to drain (default 1)
//   --deadline-ms N  per-request deadline budget sent on the wire (0=none)
//   --timeout-ms N   client socket timeout       (default 30000)
//   --label S        run label for the JSON row  (default "serve")
//   --json FILE      append a BatchReport row (the schema shared with
//                    `les3_cli batch --json`) to FILE
//   --append         splice into an existing JSON array instead of
//                    truncating FILE
//
// In open-loop mode each thread sends on a fixed schedule, so measured
// latency includes queueing delay when the server falls behind the offered
// rate (the usual open-loop convention). Exit codes: 0 success, 1 no
// successful replies or setup failure, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/text_io.h"
#include "serve/client.h"
#include "util/timer.h"

namespace {

using namespace les3;

int Usage() {
  std::fprintf(
      stderr,
      "usage: les3_loadgen <queries.txt> knn <k> [flags]\n"
      "       les3_loadgen <queries.txt> range <delta> [flags]\n"
      "flags: --host A --port N (required) --threads N --repeat N\n"
      "       --open-qps R --batch N --deadline-ms N --timeout-ms N\n"
      "       --label S --json FILE --append\n"
      "Replays the query file against a running les3_serve and reports\n"
      "QPS plus p50/p95/p99 round-trip latency. Exit codes: 0 success,\n"
      "1 no successful replies or setup failure, 2 usage error.\n");
  return 2;
}

struct Flags {
  std::string queries_path;
  bool knn = false;
  size_t k = 0;
  double delta = 0.0;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t threads = 1;
  size_t repeat = 1;
  size_t batch = 1;       // requests pipelined per round trip
  double open_qps = 0.0;  // 0 = closed loop
  uint32_t deadline_ms = 0;
  uint32_t timeout_ms = 30000;
  std::string label = "serve";
  std::string json_path;
  bool append = false;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  if (argc < 4) return false;
  flags->queries_path = argv[1];
  std::string mode = argv[2];
  if (mode == "knn") {
    flags->knn = true;
    flags->k = static_cast<size_t>(atoll(argv[3]));
  } else if (mode == "range") {
    flags->delta = atof(argv[3]);
  } else {
    return false;
  }
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--append") {
      flags->append = true;
    } else if (arg == "--host" && (v = next())) {
      flags->host = v;
    } else if (arg == "--port" && (v = next())) {
      flags->port = static_cast<uint16_t>(atoi(v));
    } else if (arg == "--threads" && (v = next())) {
      flags->threads = static_cast<size_t>(atoll(v));
    } else if (arg == "--repeat" && (v = next())) {
      flags->repeat = static_cast<size_t>(atoll(v));
    } else if (arg == "--batch" && (v = next())) {
      flags->batch = static_cast<size_t>(atoll(v));
      if (flags->batch == 0) flags->batch = 1;
    } else if (arg == "--open-qps" && (v = next())) {
      flags->open_qps = atof(v);
    } else if (arg == "--deadline-ms" && (v = next())) {
      flags->deadline_ms = static_cast<uint32_t>(atoi(v));
    } else if (arg == "--timeout-ms" && (v = next())) {
      flags->timeout_ms = static_cast<uint32_t>(atoi(v));
    } else if (arg == "--label" && (v = next())) {
      flags->label = v;
    } else if (arg == "--json" && (v = next())) {
      flags->json_path = v;
    } else {
      std::fprintf(stderr, "error: bad or incomplete flag %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    return false;
  }
  if (flags->threads == 0 || flags->repeat == 0) {
    std::fprintf(stderr, "error: --threads and --repeat must be >= 1\n");
    return false;
  }
  return true;
}

struct ThreadResult {
  std::vector<double> latencies_ms;
  uint64_t hits = 0;
  uint64_t errors = 0;
};

/// One load thread: `repeat` passes over the query file, starting at an
/// offset so concurrent threads do not march in lockstep over identical
/// (and after PR 6, identically cached) queries.
void RunThread(const Flags& flags, const std::vector<SetRecord>& queries,
               size_t thread_index, ThreadResult* result) {
  auto client = serve::Client::Connect(flags.host, flags.port,
                                       flags.timeout_ms);
  if (!client.ok()) {
    std::fprintf(stderr, "thread %zu: %s\n", thread_index,
                 client.status().ToString().c_str());
    result->errors = flags.repeat * queries.size();
    return;
  }
  serve::Client conn = std::move(client).ValueOrDie();

  size_t total = flags.repeat * queries.size();
  result->latencies_ms.reserve(total);
  // Open loop: this thread's share of the aggregate rate, as a fixed
  // inter-send interval anchored at the loop start.
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  std::chrono::nanoseconds interval{0};
  if (flags.open_qps > 0.0) {
    double per_thread = flags.open_qps / static_cast<double>(flags.threads);
    interval = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 / per_thread));
  }

  auto reconnect = [&](size_t next_i) -> bool {
    // Transport failure: reconnect and keep going so one hiccup does
    // not void the rest of the run.
    auto again = serve::Client::Connect(flags.host, flags.port,
                                        flags.timeout_ms);
    if (!again.ok()) {
      std::fprintf(stderr, "thread %zu: reconnect failed: %s\n",
                   thread_index, again.status().ToString().c_str());
      result->errors += total - next_i;
      return false;
    }
    conn = std::move(again).ValueOrDie();
    return true;
  };

  if (flags.batch > 1) {
    // Pipelined mode: groups of single-query requests share one write and
    // one wait. Each request in a group is charged the group's round trip
    // (its reply cannot land later than that).
    std::vector<serve::Request> group;
    std::vector<serve::Response> replies;
    for (size_t i = 0; i < total;) {
      size_t n = std::min(flags.batch, total - i);
      if (interval.count() > 0) {
        std::this_thread::sleep_until(start + interval * i);
      }
      group.clear();
      for (size_t j = 0; j < n; ++j) {
        serve::Request request;
        request.type = flags.knn ? serve::MsgType::kKnn
                                 : serve::MsgType::kRange;
        request.deadline_ms = flags.deadline_ms;
        request.k = static_cast<uint32_t>(flags.k);
        request.delta = flags.delta;
        request.queries.push_back(
            queries[(thread_index + i + j) % queries.size()]);
        group.push_back(std::move(request));
      }
      WallTimer timer;
      Status st = conn.CallPipelined(group, &replies);
      double ms = timer.Millis();
      if (st.ok()) {
        for (const serve::Response& reply : replies) {
          if (reply.status == serve::WireStatus::kOk) {
            result->latencies_ms.push_back(ms);
            result->hits += reply.results[0].size();
          } else {
            ++result->errors;
          }
        }
      } else {
        result->errors += n;
        if (!conn.connected() && !reconnect(i + n)) return;
      }
      i += n;
    }
    return;
  }

  for (size_t i = 0; i < total; ++i) {
    if (interval.count() > 0) {
      std::this_thread::sleep_until(start + interval * i);
    }
    const SetRecord& query =
        queries[(thread_index + i) % queries.size()];
    WallTimer timer;
    Result<std::vector<Hit>> hits =
        flags.knn
            ? conn.Knn(query.view(), flags.k, flags.deadline_ms)
            : conn.Range(query.view(), flags.delta, flags.deadline_ms);
    double ms = timer.Millis();
    if (hits.ok()) {
      result->latencies_ms.push_back(ms);
      result->hits += hits.value().size();
      continue;
    }
    ++result->errors;
    if (!conn.connected() && !reconnect(i + 1)) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();

  auto query_db = LoadSetsFromText(flags.queries_path);
  if (!query_db.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 query_db.status().ToString().c_str());
    return 1;
  }
  std::vector<SetRecord> queries;
  queries.reserve(query_db.value().size());
  for (SetId i = 0; i < query_db.value().size(); ++i) {
    queries.emplace_back(query_db.value().set(i));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "error: no queries in %s\n",
                 flags.queries_path.c_str());
    return 1;
  }

  // Fail fast (and separately from "server overloaded") if nothing is
  // listening.
  {
    auto probe = serve::Client::Connect(flags.host, flags.port,
                                        flags.timeout_ms);
    if (!probe.ok()) {
      std::fprintf(stderr, "error: %s\n", probe.status().ToString().c_str());
      return 1;
    }
    Status ping = probe.value().Ping();
    if (!ping.ok()) {
      std::fprintf(stderr, "error: ping failed: %s\n",
                   ping.ToString().c_str());
      return 1;
    }
  }

  std::vector<ThreadResult> per_thread(flags.threads);
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(flags.threads);
  for (size_t t = 0; t < flags.threads; ++t) {
    threads.emplace_back(RunThread, std::cref(flags), std::cref(queries), t,
                         &per_thread[t]);
  }
  for (auto& thread : threads) thread.join();
  double wall_s = wall.Seconds();

  std::vector<double> latencies;
  uint64_t hits_total = 0, errors = 0;
  for (const ThreadResult& r : per_thread) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    hits_total += r.hits;
    errors += r.errors;
  }
  bench::BatchLatency summary =
      bench::SummarizeLatencies(std::move(latencies), wall_s);

  const char* mode = flags.knn ? "knn" : "range";
  std::string loop = flags.open_qps > 0.0 ? "open" : "closed";
  if (flags.batch > 1) loop += ", batch " + std::to_string(flags.batch);
  std::printf(
      "%zu %s queries (%zu threads, %s loop) in %.3fs: %.0f QPS, latency "
      "p50 %.3fms p95 %.3fms p99 %.3fms (%llu hits, %llu errors)\n",
      summary.queries, mode, flags.threads, loop.c_str(), summary.wall_s,
      summary.qps, summary.p50_ms, summary.p95_ms, summary.p99_ms,
      static_cast<unsigned long long>(hits_total),
      static_cast<unsigned long long>(errors));

  if (!flags.json_path.empty()) {
    bench::BatchReport report;
    report.tool = "les3_loadgen";
    report.label = flags.label;
    report.mode = mode;
    report.param = flags.knn ? static_cast<double>(flags.k) : flags.delta;
    report.clients = flags.threads;
    report.latency = summary;
    report.hits_total = hits_total;
    report.errors = errors;
    Status written =
        bench::WriteBatchReports({report}, flags.json_path, flags.append);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[json] %s\n", flags.json_path.c_str());
  }

  if (summary.queries == 0) {
    std::fprintf(stderr, "error: no successful replies\n");
    return 1;
  }
  return 0;
}
