// les3_serve — the network serving front-end: loads (or builds) an index
// and serves the binary wire protocol of docs/serving.md over TCP until
// SIGINT/SIGTERM, then drains in-flight requests and exits 0.
//
//   les3_serve <snapshot> [flags]            serve a saved snapshot
//   les3_serve <sets.txt> --build [flags]    build first, then serve
//
// Flags (all optional):
//   --host A          listen address            (default 127.0.0.1)
//   --port N          listen port; 0 = kernel-assigned (default 0)
//   --io-workers N    epoll event loops         (default 2)
//   --executors N     engine worker threads     (default: hardware)
//   --queue N         admission-control bound   (default 256)
//   --batch-window N  executor coalescing: answer up to N compatible
//                     pending Knn/Range requests through one engine
//                     batch call; 1 disables (default 16)
//   --cache-mb N      result-cache budget; 0 disables (default 64)
//   --backend NAME    open: backend override; build: backend
//                     (default for --build: sharded_les3)
//   --shards N        shard count for --build   (default 4)
//   --groups N        L2P groups per shard for --build (default heuristic)
//
// Startup prints exactly one line "listening on port <N>" to stdout so
// scripts (the CI smoke) can discover a kernel-assigned port. Exit codes:
// 0 clean shutdown, 1 runtime error (details on stderr), 2 usage error.

#include <signal.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "api/engine_builder.h"
#include "core/text_io.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace les3;

int g_shutdown_fd = -1;

void HandleSignal(int) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(g_shutdown_fd, &one, sizeof(one));
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: les3_serve <snapshot> [flags]\n"
      "       les3_serve <sets.txt> --build [flags]\n"
      "flags: --host A --port N --io-workers N --executors N --queue N\n"
      "       --batch-window N --cache-mb N --backend NAME --shards N\n"
      "       --groups N\n"
      "Serves the les3 wire protocol (docs/serving.md) until SIGINT or\n"
      "SIGTERM, then drains in-flight requests and exits 0.\n"
      "Exit codes: 0 clean shutdown, 1 runtime error, 2 usage error.\n");
  return 2;
}

struct Flags {
  std::string input;
  bool build = false;
  std::string backend;
  uint32_t shards = 4;
  uint32_t groups = 0;
  serve::ServerOptions server;
  size_t cache_mb = 64;

  Flags() {
    // The binary defaults coalescing ON (the library default stays 1 so
    // embedded/test servers are sequential unless asked).
    server.batch_window = 16;
  }
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  if (argc < 2) return false;
  flags->input = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--build") {
      flags->build = true;
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return false;
      flags->server.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      flags->server.port = static_cast<uint16_t>(atoi(v));
    } else if (arg == "--io-workers") {
      const char* v = next();
      if (!v) return false;
      flags->server.io_workers = static_cast<size_t>(atoll(v));
    } else if (arg == "--executors") {
      const char* v = next();
      if (!v) return false;
      flags->server.executors = static_cast<size_t>(atoll(v));
    } else if (arg == "--queue") {
      const char* v = next();
      if (!v) return false;
      flags->server.max_pending = static_cast<size_t>(atoll(v));
    } else if (arg == "--batch-window") {
      const char* v = next();
      if (!v) return false;
      flags->server.batch_window = static_cast<size_t>(atoll(v));
      if (flags->server.batch_window == 0) flags->server.batch_window = 1;
    } else if (arg == "--cache-mb") {
      const char* v = next();
      if (!v) return false;
      flags->cache_mb = static_cast<size_t>(atoll(v));
    } else if (arg == "--backend") {
      const char* v = next();
      if (!v) return false;
      flags->backend = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      flags->shards = static_cast<uint32_t>(atoi(v));
    } else if (arg == "--groups") {
      const char* v = next();
      if (!v) return false;
      flags->groups = static_cast<uint32_t>(atoi(v));
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  flags.server.cache_bytes = flags.cache_mb << 20;

  Result<std::unique_ptr<api::SearchEngine>> engine =
      Status::Internal("unreachable");
  WallTimer load_timer;
  if (flags.build) {
    auto db = LoadSetsFromText(flags.input);
    if (!db.ok()) {
      std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
      return 1;
    }
    api::EngineOptions options;
    options.num_shards = flags.shards;
    options.num_groups = flags.groups;
    std::string backend =
        flags.backend.empty() ? "sharded_les3" : flags.backend;
    std::fprintf(stderr, "building %s over %zu sets...\n", backend.c_str(),
                 db.value().size());
    engine = api::EngineBuilder::Build(std::move(db).ValueOrDie(), backend,
                                       options);
  } else {
    api::OpenOptions options;
    options.backend = flags.backend;
    engine = api::EngineBuilder::Open(flags.input, options);
  }
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<api::SearchEngine> shared_engine =
      std::move(engine).ValueOrDie();
  std::fprintf(stderr, "%s %s in %.2fs (%zu sets)\n",
               flags.build ? "built" : "opened",
               shared_engine->Describe().c_str(), load_timer.Seconds(),
               shared_engine->db().size());

  g_shutdown_fd = eventfd(0, EFD_CLOEXEC);
  if (g_shutdown_fd < 0) {
    std::fprintf(stderr, "error: eventfd: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  serve::Server server(shared_engine, flags.server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "serving on %s:%u (io_workers=%zu executors=%zu "
               "queue=%zu batch_window=%zu cache=%zuMiB)\n",
               flags.server.host.c_str(), server.port(),
               server.options().io_workers, server.options().executors,
               server.options().max_pending, server.options().batch_window,
               flags.cache_mb);
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);

  // Park until SIGINT/SIGTERM (the handler writes the eventfd).
  uint64_t value = 0;
  while (read(g_shutdown_fd, &value, sizeof(value)) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "shutting down: draining in-flight requests...\n");
  server.Shutdown();
  serve::Server::Counters counters = server.counters();
  std::fprintf(stderr,
               "served %llu ok, %llu error, %llu overloaded, %llu deadline, "
               "%llu protocol errors over %llu connections\n",
               static_cast<unsigned long long>(counters.requests_ok),
               static_cast<unsigned long long>(counters.requests_error),
               static_cast<unsigned long long>(counters.overloaded),
               static_cast<unsigned long long>(counters.deadline_exceeded),
               static_cast<unsigned long long>(counters.protocol_errors),
               static_cast<unsigned long long>(counters.connections_accepted));
  return 0;
}
