// les3_cli — command-line set similarity search over text datasets,
// through the unified SearchEngine API: any backend by name.
//
//   les3_cli stats    <sets.txt>
//   les3_cli backends
//   les3_cli knn      <sets.txt> <k>     "<query tokens>" [backend] [measure] [groups] [bitmap] [shards]
//   les3_cli range    <sets.txt> <delta> "<query tokens>" [backend] [measure] [groups] [bitmap] [shards]
//   les3_cli batch    <backend> <sets.txt> <queries.txt> knn   <k>     [measure] [groups] [bitmap] [shards]
//   les3_cli batch    <backend> <sets.txt> <queries.txt> range <delta> [measure] [groups] [bitmap] [shards]
//   les3_cli gen      <ANALOG> <sets.txt> <queries.txt> [num_queries]
//   les3_cli save     <sets.txt> <snapshot> [backend] [measure] [groups] [bitmap] [shards]
//   les3_cli open     <snapshot> info
//   les3_cli open     <snapshot> knn   <k>     "<query tokens>" [backend]
//   les3_cli open     <snapshot> range <delta> "<query tokens>" [backend]
//
// <sets.txt>/<queries.txt>: one set per line, whitespace-separated integer
// token ids — the format the public benchmarks (KOSARAK, DBLP, ...) ship
// in. `batch` runs every line of <queries.txt> through KnnBatch/RangeBatch
// and reports QPS plus p50/p95/p99 per-query latency.
// `batch` also takes --json FILE [--append] [--label S] anywhere on the
// line: it appends a machine-readable row in the schema shared with
// les3_loadgen (docs/serving.md), so in-process and over-the-wire runs
// land in one file.
// `gen` writes a dataset analog (datagen/analogs.h, e.g. KOSARAK) as
// <sets.txt> plus an evenly-sampled <queries.txt> (default 200 queries) —
// the input the serving smoke and perf CI jobs feed to save/les3_serve.
// <snapshot>: a versioned index snapshot (docs/snapshot_format.md): `save`
// builds and trains once, `open` reloads with zero partitioning/training.
// [backend]: any name from `les3_cli backends` (default: les3); for
// save/open only les3, disk_les3, and sharded_les3 apply.
// [measure]: jaccard (default) | dice | cosine | containment.
// [groups]:  number of L2P groups (default: the 0.5% |D| heuristic;
//            per shard on sharded_les3).
// [bitmap]:  TGM column representation, roaring (default) | bitvector
//            (les3-family only; see the README trade-off notes).
// [shards]:  shard count for sharded_les3 (default 1); the database is
//            hash-partitioned and shards build in parallel
//            (docs/sharding.md).
//
// Exit codes: 0 success; 1 runtime error (bad input file, corrupted
// snapshot, failed build — details on stderr); 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <vector>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "core/stats.h"
#include "core/text_io.h"
#include "datagen/analogs.h"
#include "util/timer.h"

namespace {

using namespace les3;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  les3_cli stats    <sets.txt>\n"
               "  les3_cli backends\n"
               "  les3_cli knn      <sets.txt> <k>     \"<query>\" [backend] "
               "[jaccard|dice|cosine|containment] [groups] "
               "[roaring|bitvector] [shards]\n"
               "  les3_cli range    <sets.txt> <delta> \"<query>\" [backend] "
               "[jaccard|dice|cosine|containment] [groups] "
               "[roaring|bitvector] [shards]\n"
               "  les3_cli batch    <backend> <sets.txt> <queries.txt> "
               "knn <k> | range <delta>  [measure] [groups] [bitmap] "
               "[shards] [--json FILE [--append] [--label S]]\n"
               "  les3_cli gen      <ANALOG> <sets.txt> <queries.txt> "
               "[num_queries]\n"
               "  les3_cli save     <sets.txt> <snapshot> "
               "[les3|disk_les3|sharded_les3] "
               "[jaccard|dice|cosine|containment] [groups] "
               "[roaring|bitvector] [shards]\n"
               "  les3_cli open     <snapshot> info\n"
               "  les3_cli open     <snapshot> knn   <k>     \"<query>\" "
               "[les3|disk_les3|sharded_les3]\n"
               "  les3_cli open     <snapshot> range <delta> \"<query>\" "
               "[les3|disk_les3|sharded_les3]\n"
               "\n"
               "batch runs every line of <queries.txt> through the batch\n"
               "query path and prints QPS plus p50/p95/p99 latency.\n"
               "save builds (and trains) an index once and writes it as a\n"
               "versioned snapshot; open reloads it with zero partitioning\n"
               "or training work. Exit codes: 0 success, 1 runtime error\n"
               "(details on stderr), 2 usage error.\n");
  return 2;
}

Result<SimilarityMeasure> ParseMeasure(const std::string& name) {
  if (name == "jaccard") return SimilarityMeasure::kJaccard;
  if (name == "dice") return SimilarityMeasure::kDice;
  if (name == "cosine") return SimilarityMeasure::kCosine;
  if (name == "containment") return SimilarityMeasure::kContainment;
  return Status::InvalidArgument("unknown measure: " + name);
}

void PrintResult(const api::QueryResult& result) {
  for (const auto& [id, sim] : result.hits) {
    std::printf("%u\t%.6f\n", id, sim);
  }
  std::fprintf(stderr,
               "%zu results in %.2fms (PE %.4f, %llu candidates)\n",
               result.hits.size(), result.TotalMs(),
               result.stats.pruning_efficiency,
               static_cast<unsigned long long>(
                   result.stats.candidates_verified));
  if (result.io) {
    std::fprintf(stderr, "simulated I/O: %.2fms, %llu seeks, %llu pages\n",
                 result.io->io_ms,
                 static_cast<unsigned long long>(result.io->seeks),
                 static_cast<unsigned long long>(result.io->pages));
  }
}

/// Parses the optional [measure] [groups] [bitmap] [shards] tail of knn /
/// range / batch / save invocations, starting at argv[first]. Returns
/// false (after printing the error) on a bad value.
bool ParseBuildTail(int argc, char** argv, int first,
                    api::EngineOptions* options) {
  if (argc > first) {
    auto measure = ParseMeasure(argv[first]);
    if (!measure.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   measure.status().ToString().c_str());
      return false;
    }
    options->measure = measure.value();
  }
  if (argc > first + 1) {
    options->num_groups = static_cast<uint32_t>(atoi(argv[first + 1]));
  }
  if (argc > first + 2) {
    auto bitmap = bitmap::ParseBitmapBackend(argv[first + 2]);
    if (!bitmap.ok()) {
      std::fprintf(stderr, "error: %s\n", bitmap.status().ToString().c_str());
      return false;
    }
    options->bitmap_backend = bitmap.value();
  }
  if (argc > first + 3) {
    int shards = atoi(argv[first + 3]);
    if (shards < 1) {
      std::fprintf(stderr, "error: [shards] must be >= 1, got \"%s\"\n",
                   argv[first + 3]);
      return false;
    }
    options->num_shards = static_cast<uint32_t>(shards);
  }
  return true;
}

/// --json FILE [--append] [--label S], stripped from argv before
/// positional parsing so the flags can sit anywhere on a batch line.
struct JsonFlags {
  std::string path;
  bool append = false;
  std::string label = "in_process";
};

/// `les3_cli batch <backend> <sets.txt> <queries.txt> knn <k> | range
/// <delta> [measure] [groups] [bitmap] [shards]` — throughput mode: the
/// whole query file runs through KnnBatch/RangeBatch and the summary
/// (QPS, latency percentiles) comes from the shared bench helper.
int RunBatch(int argc, char** argv, const JsonFlags& json) {
  if (argc < 7) return Usage();
  std::string mode = argv[5];
  bool knn = mode == "knn";
  if (!knn && mode != "range") return Usage();

  auto db = LoadSetsFromText(argv[3]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto query_db = LoadSetsFromText(argv[4]);
  if (!query_db.ok()) {
    std::fprintf(stderr, "error: %s\n", query_db.status().ToString().c_str());
    return 1;
  }
  std::vector<SetRecord> queries;
  queries.reserve(query_db.value().size());
  for (SetId i = 0; i < query_db.value().size(); ++i) {
    queries.emplace_back(query_db.value().set(i));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "error: no queries in %s\n", argv[4]);
    return 1;
  }

  api::EngineOptions options;
  if (!ParseBuildTail(argc, argv, 7, &options)) return 1;
  std::fprintf(stderr, "indexing %zu sets...\n", db.value().size());
  WallTimer build_timer;
  auto engine = api::EngineBuilder::Build(std::move(db).ValueOrDie(), argv[2],
                                          options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "built %s in %.2fs\n",
               engine.value()->Describe().c_str(), build_timer.Seconds());

  WallTimer timer;
  std::vector<api::QueryResult> results;
  if (knn) {
    results = engine.value()->KnnBatch(queries,
                                       static_cast<size_t>(atoll(argv[6])));
  } else {
    results = engine.value()->RangeBatch(queries, atof(argv[6]));
  }
  bench::BatchLatency summary =
      bench::SummarizeBatch(results, timer.Seconds());
  uint64_t total_hits = 0, total_candidates = 0, total_size_skipped = 0;
  for (const auto& r : results) {
    total_hits += r.hits.size();
    total_candidates += r.stats.candidates_verified;
    total_size_skipped += r.stats.candidates_size_skipped;
  }
  std::printf(
      "%zu %s queries in %.3fs: %.0f QPS, latency p50 %.3fms p95 %.3fms "
      "p99 %.3fms (%llu hits total)\n",
      summary.queries, mode.c_str(), summary.wall_s, summary.qps,
      summary.p50_ms, summary.p95_ms, summary.p99_ms,
      static_cast<unsigned long long>(total_hits));
  std::printf(
      "verification: %llu candidates verified, %llu skipped by the size "
      "filter\n",
      static_cast<unsigned long long>(total_candidates),
      static_cast<unsigned long long>(total_size_skipped));

  if (!json.path.empty()) {
    bench::BatchReport report;
    report.tool = "les3_cli_batch";
    report.label = json.label;
    report.mode = mode;
    report.param = atof(argv[6]);  // k and delta both parse as a double
    report.clients = 1;
    report.latency = summary;
    report.hits_total = total_hits;
    report.have_engine_stats = true;
    report.candidates_verified = total_candidates;
    report.candidates_size_skipped = total_size_skipped;
    Status written =
        bench::WriteBatchReports({report}, json.path, json.append);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[json] %s\n", json.path.c_str());
  }
  return 0;
}

/// `les3_cli gen <ANALOG> <sets.txt> <queries.txt> [num_queries]` —
/// materializes a dataset analog as text so scripts (the CI serving jobs)
/// can feed it to save/batch/les3_serve. Queries are an even sample of
/// the generated sets (default 200), written in the same format.
int RunGen(int argc, char** argv) {
  if (argc < 5) return Usage();
  const datagen::AnalogSpec* spec = nullptr;
  for (const auto& candidate : datagen::AllAnalogSpecs()) {
    if (candidate.name == argv[2]) spec = &candidate;
  }
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown analog \"%s\"; one of:", argv[2]);
    for (const auto& candidate : datagen::AllAnalogSpecs()) {
      std::fprintf(stderr, " %s", candidate.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  size_t num_queries = argc > 5 ? static_cast<size_t>(atoll(argv[5])) : 200;

  WallTimer timer;
  SetDatabase db = datagen::GenerateAnalog(*spec);
  Status saved = SaveSetsToText(db, argv[3]);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  if (num_queries > db.size()) num_queries = db.size();
  SetDatabase queries(db.num_tokens());
  size_t stride = num_queries > 0 ? db.size() / num_queries : 1;
  if (stride == 0) stride = 1;
  for (size_t i = 0; i < db.size() && queries.size() < num_queries;
       i += stride) {
    queries.AddSet(db.set(static_cast<SetId>(i)));
  }
  saved = SaveSetsToText(queries, argv[4]);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%s analog: %zu sets -> %s, %zu queries -> %s (%.2fs)\n",
               spec->name.c_str(), db.size(), argv[3], queries.size(),
               argv[4], timer.Seconds());
  return 0;
}

int RunSave(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto db = LoadSetsFromText(argv[2]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::string backend = argc > 4 ? argv[4] : "les3";
  api::EngineOptions options;
  // Persist the trained cascade too: the snapshot is the full learned
  // artifact, not just the query-time structures.
  options.keep_l2p_models = true;
  if (!ParseBuildTail(argc, argv, 5, &options)) return 1;

  std::fprintf(stderr, "indexing %zu sets...\n", db.value().size());
  WallTimer build_timer;
  auto engine = api::EngineBuilder::Build(std::move(db).ValueOrDie(), backend,
                                          options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  double build_s = build_timer.Seconds();
  WallTimer save_timer;
  Status saved = engine.value()->Save(argv[3]);
  if (!saved.ok()) {
    // e.g. a non-les3 backend (NotSupported) or an unwritable path.
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "built %s in %.2fs; snapshot written to %s in %.3fs\n",
               engine.value()->Describe().c_str(), build_s, argv[3],
               save_timer.Seconds());
  return 0;
}

int RunOpen(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string sub = argv[3];
  bool knn = sub == "knn";
  if (sub != "info" && !knn && sub != "range") return Usage();
  if (sub != "info" && argc < 6) return Usage();

  api::OpenOptions options;
  if (sub != "info" && argc > 6) options.backend = argv[6];
  WallTimer open_timer;
  auto engine = api::EngineBuilder::Open(argv[2], options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "opened %s in %.3fs (%zu sets, index %llu bytes)\n",
               engine.value()->Describe().c_str(), open_timer.Seconds(),
               engine.value()->db().size(),
               static_cast<unsigned long long>(engine.value()->IndexBytes()));
  if (sub == "info") return 0;

  auto query = ParseSetLine(argv[5]);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  api::QueryResult result;
  if (knn) {
    result = engine.value()->Knn(query.value(),
                                 static_cast<size_t>(atoll(argv[4])));
  } else {
    result = engine.value()->Range(query.value(), atof(argv[4]));
  }
  PrintResult(result);
  return 0;
}

int RunQuery(int argc, char** argv, bool knn) {
  if (argc < 5) return Usage();
  auto db = LoadSetsFromText(argv[2]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto query = ParseSetLine(argv[4]);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::string backend = argc > 5 ? argv[5] : "les3";
  api::EngineOptions options;
  if (!ParseBuildTail(argc, argv, 6, &options)) return 1;

  std::fprintf(stderr, "indexing %zu sets...\n", db.value().size());
  WallTimer build_timer;
  auto engine = api::EngineBuilder::Build(std::move(db).ValueOrDie(), backend,
                                          options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "built %s in %.2fs (index %llu bytes)\n",
               engine.value()->Describe().c_str(), build_timer.Seconds(),
               static_cast<unsigned long long>(engine.value()->IndexBytes()));

  api::QueryResult result;
  if (knn) {
    size_t k = static_cast<size_t>(atoll(argv[3]));
    result = engine.value()->Knn(query.value(), k);
  } else {
    double delta = atof(argv[3]);
    result = engine.value()->Range(query.value(), delta);
  }
  PrintResult(result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json/--append/--label wherever they appear so the positional
  // grammar of every command stays untouched.
  JsonFlags json;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json.path = argv[++i];
    } else if (arg == "--append") {
      json.append = true;
    } else if (arg == "--label" && i + 1 < argc) {
      json.label = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "backends") {
    for (const auto& name : api::BackendNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (argc < 3) return Usage();
  if (command == "stats") {
    auto db = les3::LoadSetsFromText(argv[2]);
    if (!db.ok()) {
      std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", les3::ComputeStats(db.value()).ToString().c_str());
    return 0;
  }
  if (command == "knn") return RunQuery(argc, argv, /*knn=*/true);
  if (command == "range") return RunQuery(argc, argv, /*knn=*/false);
  if (command == "batch") return RunBatch(argc, argv, json);
  if (command == "gen") return RunGen(argc, argv);
  if (command == "save") return RunSave(argc, argv);
  if (command == "open") return RunOpen(argc, argv);
  return Usage();
}
