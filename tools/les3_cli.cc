// les3_cli — command-line set similarity search over text datasets.
//
//   les3_cli stats  <sets.txt>
//   les3_cli knn    <sets.txt> <k>     "<query tokens>" [groups] [measure]
//   les3_cli range  <sets.txt> <delta> "<query tokens>" [groups] [measure]
//
// <sets.txt>: one set per line, whitespace-separated integer token ids —
// the format the public benchmarks (KOSARAK, DBLP, ...) ship in.
// [groups]: number of L2P groups (default: the 0.5% |D| heuristic).
// [measure]: jaccard (default) | dice | cosine.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/stats.h"
#include "core/text_io.h"
#include "search/builder.h"
#include "util/timer.h"

namespace {

using namespace les3;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  les3_cli stats <sets.txt>\n"
               "  les3_cli knn   <sets.txt> <k>     \"<query>\" [groups] "
               "[jaccard|dice|cosine]\n"
               "  les3_cli range <sets.txt> <delta> \"<query>\" [groups] "
               "[jaccard|dice|cosine]\n");
  return 2;
}

Result<SimilarityMeasure> ParseMeasure(const std::string& name) {
  if (name == "jaccard") return SimilarityMeasure::kJaccard;
  if (name == "dice") return SimilarityMeasure::kDice;
  if (name == "cosine") return SimilarityMeasure::kCosine;
  return Status::InvalidArgument("unknown measure: " + name);
}

int RunQuery(int argc, char** argv, bool knn) {
  if (argc < 5) return Usage();
  auto db = LoadSetsFromText(argv[2]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto query = ParseSetLine(argv[4]);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  search::Les3BuildOptions options;
  if (argc > 5) options.num_groups = static_cast<uint32_t>(atoi(argv[5]));
  if (argc > 6) {
    auto measure = ParseMeasure(argv[6]);
    if (!measure.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   measure.status().ToString().c_str());
      return 1;
    }
    options.measure = measure.value();
  }
  std::fprintf(stderr, "indexing %zu sets...\n", db.value().size());
  WallTimer build_timer;
  auto index = BuildLes3Index(std::move(db).ValueOrDie(), options);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "built in %.2fs (TGM %llu bytes)\n",
               build_timer.Seconds(),
               static_cast<unsigned long long>(index.value().IndexBytes()));

  search::QueryStats stats;
  std::vector<search::Hit> hits;
  if (knn) {
    size_t k = static_cast<size_t>(atoll(argv[3]));
    hits = index.value().Knn(query.value(), k, &stats);
  } else {
    double delta = atof(argv[3]);
    hits = index.value().Range(query.value(), delta, &stats);
  }
  for (const auto& [id, sim] : hits) {
    std::printf("%u\t%.6f\n", id, sim);
  }
  std::fprintf(stderr,
               "%zu results in %.2fms (PE %.4f, %llu candidates)\n",
               hits.size(), stats.micros / 1000.0, stats.pruning_efficiency,
               static_cast<unsigned long long>(stats.candidates_verified));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  if (command == "stats") {
    auto db = les3::LoadSetsFromText(argv[2]);
    if (!db.ok()) {
      std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", les3::ComputeStats(db.value()).ToString().c_str());
    return 0;
  }
  if (command == "knn") return RunQuery(argc, argv, /*knn=*/true);
  if (command == "range") return RunQuery(argc, argv, /*knn=*/false);
  return Usage();
}
