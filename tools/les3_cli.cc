// les3_cli — command-line set similarity search over text datasets,
// through the unified SearchEngine API: any backend by name.
//
//   les3_cli stats    <sets.txt>
//   les3_cli backends
//   les3_cli knn      <sets.txt> <k>     "<query tokens>" [backend] [measure] [groups] [bitmap]
//   les3_cli range    <sets.txt> <delta> "<query tokens>" [backend] [measure] [groups] [bitmap]
//
// <sets.txt>: one set per line, whitespace-separated integer token ids —
// the format the public benchmarks (KOSARAK, DBLP, ...) ship in.
// [backend]: any name from `les3_cli backends` (default: les3).
// [measure]: jaccard (default) | dice | cosine | containment.
// [groups]:  number of L2P groups (default: the 0.5% |D| heuristic).
// [bitmap]:  TGM column representation, roaring (default) | bitvector
//            (les3 / disk_les3 only; see the README trade-off notes).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/engine_builder.h"
#include "core/stats.h"
#include "core/text_io.h"
#include "util/timer.h"

namespace {

using namespace les3;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  les3_cli stats    <sets.txt>\n"
               "  les3_cli backends\n"
               "  les3_cli knn      <sets.txt> <k>     \"<query>\" [backend] "
               "[jaccard|dice|cosine|containment] [groups] "
               "[roaring|bitvector]\n"
               "  les3_cli range    <sets.txt> <delta> \"<query>\" [backend] "
               "[jaccard|dice|cosine|containment] [groups] "
               "[roaring|bitvector]\n");
  return 2;
}

Result<SimilarityMeasure> ParseMeasure(const std::string& name) {
  if (name == "jaccard") return SimilarityMeasure::kJaccard;
  if (name == "dice") return SimilarityMeasure::kDice;
  if (name == "cosine") return SimilarityMeasure::kCosine;
  if (name == "containment") return SimilarityMeasure::kContainment;
  return Status::InvalidArgument("unknown measure: " + name);
}

int RunQuery(int argc, char** argv, bool knn) {
  if (argc < 5) return Usage();
  auto db = LoadSetsFromText(argv[2]);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto query = ParseSetLine(argv[4]);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::string backend = argc > 5 ? argv[5] : "les3";
  api::EngineOptions options;
  if (argc > 6) {
    auto measure = ParseMeasure(argv[6]);
    if (!measure.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   measure.status().ToString().c_str());
      return 1;
    }
    options.measure = measure.value();
  }
  if (argc > 7) options.num_groups = static_cast<uint32_t>(atoi(argv[7]));
  if (argc > 8) {
    auto bitmap = bitmap::ParseBitmapBackend(argv[8]);
    if (!bitmap.ok()) {
      std::fprintf(stderr, "error: %s\n", bitmap.status().ToString().c_str());
      return 1;
    }
    options.bitmap_backend = bitmap.value();
  }

  std::fprintf(stderr, "indexing %zu sets...\n", db.value().size());
  WallTimer build_timer;
  auto engine = api::EngineBuilder::Build(std::move(db).ValueOrDie(), backend,
                                          options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "built %s in %.2fs (index %llu bytes)\n",
               engine.value()->Describe().c_str(), build_timer.Seconds(),
               static_cast<unsigned long long>(engine.value()->IndexBytes()));

  api::QueryResult result;
  if (knn) {
    size_t k = static_cast<size_t>(atoll(argv[3]));
    result = engine.value()->Knn(query.value(), k);
  } else {
    double delta = atof(argv[3]);
    result = engine.value()->Range(query.value(), delta);
  }
  for (const auto& [id, sim] : result.hits) {
    std::printf("%u\t%.6f\n", id, sim);
  }
  std::fprintf(stderr,
               "%zu results in %.2fms (PE %.4f, %llu candidates)\n",
               result.hits.size(), result.TotalMs(),
               result.stats.pruning_efficiency,
               static_cast<unsigned long long>(
                   result.stats.candidates_verified));
  if (result.io) {
    std::fprintf(stderr, "simulated I/O: %.2fms, %llu seeks, %llu pages\n",
                 result.io->io_ms,
                 static_cast<unsigned long long>(result.io->seeks),
                 static_cast<unsigned long long>(result.io->pages));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "backends") {
    for (const auto& name : api::BackendNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (argc < 3) return Usage();
  if (command == "stats") {
    auto db = les3::LoadSetsFromText(argv[2]);
    if (!db.ok()) {
      std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", les3::ComputeStats(db.value()).ToString().c_str());
    return 0;
  }
  if (command == "knn") return RunQuery(argc, argv, /*knn=*/true);
  if (command == "range") return RunQuery(argc, argv, /*knn=*/false);
  return Usage();
}
