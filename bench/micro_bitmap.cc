// Micro-benchmarks for the bitmap substrate (google-benchmark): Roaring
// add/contains/intersection/iteration across density regimes, against the
// dense BitVector.

#include <benchmark/benchmark.h>

#include "bitmap/bitvector.h"
#include "bitmap/kernels.h"
#include "bitmap/roaring.h"
#include "util/random.h"

namespace les3 {
namespace bitmap {
namespace {

std::vector<uint32_t> SortedRandom(size_t n, uint32_t universe,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<uint32_t>(rng.Uniform(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void BM_RoaringAdd(benchmark::State& state) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Roaring r;
    for (int i = 0; i < 10000; ++i) {
      r.Add(static_cast<uint32_t>(rng.Uniform(universe)));
    }
    benchmark::DoNotOptimize(r.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_RoaringAdd)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 28);

void BM_RoaringContains(benchmark::State& state) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  Roaring r = Roaring::FromSorted(SortedRandom(100000, universe, 2));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        r.Contains(static_cast<uint32_t>(rng.Uniform(universe))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoaringContains)->Arg(1 << 17)->Arg(1 << 24);

void BM_RoaringAndCardinality(benchmark::State& state) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  Roaring a = Roaring::FromSorted(SortedRandom(50000, universe, 4));
  Roaring b = Roaring::FromSorted(SortedRandom(50000, universe, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCardinality(b));
  }
}
BENCHMARK(BM_RoaringAndCardinality)->Arg(1 << 17)->Arg(1 << 24);

void BM_RoaringForEach(benchmark::State& state) {
  Roaring r = Roaring::FromSorted(
      SortedRandom(100000, static_cast<uint32_t>(state.range(0)), 6));
  for (auto _ : state) {
    uint64_t sum = 0;
    r.ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * r.Cardinality());
}
BENCHMARK(BM_RoaringForEach)->Arg(1 << 17)->Arg(1 << 24);

void BM_RoaringRunOptimizedForEach(benchmark::State& state) {
  // Dense consecutive values: run containers shine.
  std::vector<uint32_t> values(100000);
  for (uint32_t i = 0; i < values.size(); ++i) values[i] = i + 7;
  Roaring r = Roaring::FromSorted(values);
  r.RunOptimize();
  for (auto _ : state) {
    uint64_t sum = 0;
    r.ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RoaringRunOptimizedForEach);

/// Accumulation kernels vs the ForEach baseline, per container regime.
/// Args: (universe, cardinality, run_optimize). Small universes with high
/// cardinality exercise bitsets/runs; large universes exercise arrays.
void AccumulateSetup(benchmark::State& state, Roaring* r) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  size_t cardinality = static_cast<size_t>(state.range(1));
  std::vector<uint32_t> values;
  if (cardinality >= universe) {  // contiguous: run containers
    values.resize(universe);
    for (uint32_t i = 0; i < universe; ++i) values[i] = i;
  } else {
    values = SortedRandom(cardinality, universe, 8);
  }
  *r = Roaring::FromSorted(values);
  if (state.range(2) != 0) r->RunOptimize();
}

void BM_RoaringAccumulateInto(benchmark::State& state) {
  Roaring r;
  AccumulateSetup(state, &r);
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(static_cast<uint32_t>(state.range(0)), &counts);
  for (auto _ : state) {
    acc.Reset(static_cast<uint32_t>(state.range(0)), &counts);
    r.AccumulateInto(acc, 2);
    acc.Finish();
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * r.Cardinality());
}

void BM_RoaringAccumulateForEach(benchmark::State& state) {
  Roaring r;
  AccumulateSetup(state, &r);
  std::vector<uint32_t> counts;
  for (auto _ : state) {
    counts.assign(static_cast<size_t>(state.range(0)), 0);
    r.ForEach([&](uint32_t v) { counts[v] += 2; });
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * r.Cardinality());
}

#define LES3_ACCUMULATE_ARGS                                              \
  ArgNames({"universe", "card", "runopt"})                                \
      ->Args({1 << 12, 1 << 12, 1})   /* one full run container */        \
      ->Args({1 << 16, 40000, 0})     /* bitset container */              \
      ->Args({1 << 16, 2000, 0})      /* array container */               \
      ->Args({1 << 20, 50000, 0})     /* arrays across many chunks */
BENCHMARK(BM_RoaringAccumulateInto)->LES3_ACCUMULATE_ARGS;
BENCHMARK(BM_RoaringAccumulateForEach)->LES3_ACCUMULATE_ARGS;

void BM_BitVectorAccumulateInto(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector v(bits);
  Rng rng(9);
  for (size_t i = 0; i < bits / 4; ++i) v.Set(rng.Uniform(bits));
  std::vector<uint32_t> counts;
  for (auto _ : state) {
    counts.assign(bits, 0);
    v.AccumulateInto(counts.data(), 2);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * v.Count());
}
BENCHMARK(BM_BitVectorAccumulateInto)->Arg(1 << 12)->Arg(1 << 16);

void BM_BitVectorAndCount(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector a(bits), b(bits);
  Rng rng(7);
  for (size_t i = 0; i < bits / 4; ++i) {
    a.Set(rng.Uniform(bits));
    b.Set(rng.Uniform(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
  }
}
BENCHMARK(BM_BitVectorAndCount)->Arg(1 << 14)->Arg(1 << 20);

}  // namespace
}  // namespace bitmap
}  // namespace les3

BENCHMARK_MAIN();
