// Micro-benchmarks for the bitmap substrate (google-benchmark): Roaring
// add/contains/intersection/iteration across density regimes, against the
// dense BitVector.

#include <benchmark/benchmark.h>

#include <string>

#include "bitmap/bitvector.h"
#include "bitmap/kernels.h"
#include "bitmap/roaring.h"
#include "core/simd_dispatch.h"
#include "util/random.h"

namespace les3 {
namespace bitmap {
namespace {

std::vector<uint32_t> SortedRandom(size_t n, uint32_t universe,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<uint32_t>(rng.Uniform(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void BM_RoaringAdd(benchmark::State& state) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Roaring r;
    for (int i = 0; i < 10000; ++i) {
      r.Add(static_cast<uint32_t>(rng.Uniform(universe)));
    }
    benchmark::DoNotOptimize(r.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_RoaringAdd)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 28);

void BM_RoaringContains(benchmark::State& state) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  Roaring r = Roaring::FromSorted(SortedRandom(100000, universe, 2));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        r.Contains(static_cast<uint32_t>(rng.Uniform(universe))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoaringContains)->Arg(1 << 17)->Arg(1 << 24);

void BM_RoaringAndCardinality(benchmark::State& state) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  Roaring a = Roaring::FromSorted(SortedRandom(50000, universe, 4));
  Roaring b = Roaring::FromSorted(SortedRandom(50000, universe, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCardinality(b));
  }
}
BENCHMARK(BM_RoaringAndCardinality)->Arg(1 << 17)->Arg(1 << 24);

void BM_RoaringForEach(benchmark::State& state) {
  Roaring r = Roaring::FromSorted(
      SortedRandom(100000, static_cast<uint32_t>(state.range(0)), 6));
  for (auto _ : state) {
    uint64_t sum = 0;
    r.ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * r.Cardinality());
}
BENCHMARK(BM_RoaringForEach)->Arg(1 << 17)->Arg(1 << 24);

void BM_RoaringRunOptimizedForEach(benchmark::State& state) {
  // Dense consecutive values: run containers shine.
  std::vector<uint32_t> values(100000);
  for (uint32_t i = 0; i < values.size(); ++i) values[i] = i + 7;
  Roaring r = Roaring::FromSorted(values);
  r.RunOptimize();
  for (auto _ : state) {
    uint64_t sum = 0;
    r.ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RoaringRunOptimizedForEach);

/// Accumulation kernels vs the ForEach baseline, per container regime.
/// Args: (universe, cardinality, run_optimize). Small universes with high
/// cardinality exercise bitsets/runs; large universes exercise arrays.
void AccumulateSetup(benchmark::State& state, Roaring* r) {
  uint32_t universe = static_cast<uint32_t>(state.range(0));
  size_t cardinality = static_cast<size_t>(state.range(1));
  std::vector<uint32_t> values;
  if (cardinality >= universe) {  // contiguous: run containers
    values.resize(universe);
    for (uint32_t i = 0; i < universe; ++i) values[i] = i;
  } else {
    values = SortedRandom(cardinality, universe, 8);
  }
  *r = Roaring::FromSorted(values);
  if (state.range(2) != 0) r->RunOptimize();
}

void BM_RoaringAccumulateInto(benchmark::State& state) {
  Roaring r;
  AccumulateSetup(state, &r);
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(static_cast<uint32_t>(state.range(0)), &counts);
  for (auto _ : state) {
    acc.Reset(static_cast<uint32_t>(state.range(0)), &counts);
    r.AccumulateInto(acc, 2);
    acc.Finish();
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * r.Cardinality());
}

void BM_RoaringAccumulateForEach(benchmark::State& state) {
  Roaring r;
  AccumulateSetup(state, &r);
  std::vector<uint32_t> counts;
  for (auto _ : state) {
    counts.assign(static_cast<size_t>(state.range(0)), 0);
    r.ForEach([&](uint32_t v) { counts[v] += 2; });
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * r.Cardinality());
}

#define LES3_ACCUMULATE_ARGS                                              \
  ArgNames({"universe", "card", "runopt"})                                \
      ->Args({1 << 12, 1 << 12, 1})   /* one full run container */        \
      ->Args({1 << 16, 40000, 0})     /* bitset container */              \
      ->Args({1 << 16, 2000, 0})      /* array container */               \
      ->Args({1 << 20, 50000, 0})     /* arrays across many chunks */
BENCHMARK(BM_RoaringAccumulateInto)->LES3_ACCUMULATE_ARGS;
BENCHMARK(BM_RoaringAccumulateForEach)->LES3_ACCUMULATE_ARGS;

void BM_BitVectorAccumulateInto(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector v(bits);
  Rng rng(9);
  for (size_t i = 0; i < bits / 4; ++i) v.Set(rng.Uniform(bits));
  std::vector<uint32_t> counts;
  for (auto _ : state) {
    counts.assign(bits, 0);
    v.AccumulateInto(counts.data(), 2);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * v.Count());
}
BENCHMARK(BM_BitVectorAccumulateInto)->Arg(1 << 12)->Arg(1 << 16);

void BM_BitVectorAndCount(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector a(bits), b(bits);
  Rng rng(7);
  for (size_t i = 0; i < bits / 4; ++i) {
    a.Set(rng.Uniform(bits));
    b.Set(rng.Uniform(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
  }
}
BENCHMARK(BM_BitVectorAndCount)->Arg(1 << 14)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Per-dispatch-level rows for the bitset word-scan accumulate kernel: the
// same AccumulateWords entry point pinned to each SIMD tier the machine
// supports, in set bits per second, at the densities the level dispatch
// cares about (the vector paths only engage above their popcount cutoff).

void AccumulateWordsAtLevel(benchmark::State& state, simd::Level level,
                            double density) {
  constexpr size_t kNumWords = 1024;  // one 64Ki-bit bitset container
  Rng rng(static_cast<uint64_t>(density * 977) + 11);
  std::vector<uint64_t> words(kNumWords, 0);
  uint64_t set_bits = 0;
  for (uint64_t& w : words) {
    for (int b = 0; b < 64; ++b) {
      if (rng.Uniform(1000) < static_cast<uint64_t>(density * 1000)) {
        w |= uint64_t{1} << b;
      }
    }
    set_bits += static_cast<uint64_t>(__builtin_popcountll(w));
  }
  std::vector<uint32_t> counts(kNumWords * 64, 0);
  simd::SetLevelForTesting(level);
  for (auto _ : state) {
    AccumulateWords(words.data(), words.size(), /*base=*/0, counts.data(),
                    /*weight=*/2, counts.size());
    benchmark::DoNotOptimize(counts.data());
  }
  simd::ClearLevelForTesting();
  state.SetItemsProcessed(state.iterations() * set_bits);  // bits/sec
}

/// Registered at runtime because the level list depends on the machine:
/// one row per (supported level x bit density), named
/// BM_AccumulateWordsLevel/<level>/density_pct:<d>.
void RegisterLevelBenchmarks() {
  for (simd::Level level : simd::SupportedLevels()) {
    for (int density_pct : {50, 90, 10}) {
      std::string name = std::string("BM_AccumulateWordsLevel/") +
                         simd::LevelName(level) +
                         "/density_pct:" + std::to_string(density_pct);
      benchmark::RegisterBenchmark(
          name.c_str(), [level, density_pct](benchmark::State& state) {
            AccumulateWordsAtLevel(state, level, density_pct / 100.0);
          });
    }
  }
}

}  // namespace
}  // namespace bitmap
}  // namespace les3

int main(int argc, char** argv) {
  les3::bitmap::RegisterLevelBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
