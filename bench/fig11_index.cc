// Figure 11 — index size and construction time.
//
// For each memory-resident analog: LES3's TGM (with Roaring compression)
// vs DualTrans (transform vectors + R-tree) vs InvIdx (posting lists).
//
// Expected shape (paper): the TGM is by far the smallest (up to 90% less);
// LES3's construction time is dominated by (one-time) model training.

#include <cstdio>

#include "bench_util.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "datagen/analogs.h"
#include "l2p/l2p.h"
#include "search/les3_index.h"

int main() {
  using namespace les3;
  TableReporter table({"dataset", "method", "index_bytes", "index",
                       "build_s"});
  for (const auto& spec : datagen::MemoryAnalogSpecs()) {
    SetDatabase db = datagen::GenerateAnalog(spec, 3);
    uint32_t groups = bench::DefaultGroups(db.size());

    {
      WallTimer timer;
      l2p::L2PPartitioner l2p(bench::BenchCascade(groups));
      auto part = l2p.Partition(db, groups);
      search::Les3Index index(db, part.assignment, part.num_groups);
      double build_s = timer.Seconds();
      table.Add(spec.name, "LES3(TGM)", index.tgm().BitmapBytes(),
                HumanBytes(index.tgm().BitmapBytes()), build_s);
    }
    {
      WallTimer timer;
      baselines::DualTrans dualtrans(&db);
      table.Add(spec.name, "DualTrans", dualtrans.IndexBytes(),
                HumanBytes(dualtrans.IndexBytes()), timer.Seconds());
    }
    {
      WallTimer timer;
      baselines::InvIdx invidx(&db);
      table.Add(spec.name, "InvIdx", invidx.IndexBytes(),
                HumanBytes(invidx.IndexBytes()), timer.Seconds());
    }
    std::printf("%s done\n", spec.name.c_str());
  }
  bench::Emit(table, "Figure 11: index size and construction time",
              "fig11_index.csv");
  return 0;
}
