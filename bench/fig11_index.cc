// Figure 11 — index size and construction time, through the unified
// SearchEngine API: every method is built by EngineBuilder and reports
// its footprint via SearchEngine::IndexBytes.
//
// For each memory-resident analog: LES3's TGM vs DualTrans (transform
// vectors + R-tree) vs InvIdx (posting lists). All methods report the
// full index footprint (SearchEngine::IndexBytes); for LES3 that is the
// Roaring bitmaps plus the group-membership arrays, slightly more than
// the bitmap-only number the ablation bench tracks.
//
// Expected shape (paper): the TGM is by far the smallest (up to 90% less);
// LES3's construction time is dominated by (one-time) model training.

#include <cstdio>
#include <memory>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "datagen/analogs.h"

int main() {
  using namespace les3;
  TableReporter table({"dataset", "method", "index_bytes", "index",
                       "build_s"});
  const std::vector<std::pair<const char*, const char*>> methods{
      {"LES3(TGM)", "les3"},
      {"DualTrans", "dualtrans"},
      {"InvIdx", "invidx"},
  };
  for (const auto& spec : datagen::MemoryAnalogSpecs()) {
    auto db = std::make_shared<SetDatabase>(datagen::GenerateAnalog(spec, 3));
    uint32_t groups = bench::DefaultGroups(db->size());

    api::EngineOptions options;
    options.num_groups = groups;
    options.cascade = bench::BenchCascade(groups);

    for (const auto& [label, backend] : methods) {
      WallTimer timer;
      auto engine =
          api::EngineBuilder::Build(db, backend, options).ValueOrDie();
      double build_s = timer.Seconds();
      table.Add(spec.name, label, engine->IndexBytes(),
                HumanBytes(engine->IndexBytes()), build_s);
    }
    std::printf("%s done\n", spec.name.c_str());
  }
  bench::Emit(table, "Figure 11: index size and construction time",
              "fig11_index.csv");
  return 0;
}
