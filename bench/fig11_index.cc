// Figure 11 — index size, construction time, and (since the cache-resident
// verification pipeline) a low-threshold Range query leg, through the
// unified SearchEngine API: every method is built by EngineBuilder and
// reports its footprint via SearchEngine::IndexBytes.
//
// For each memory-resident analog: LES3's TGM vs DualTrans (transform
// vectors + R-tree) vs InvIdx (posting lists). All methods report the
// full index footprint (SearchEngine::IndexBytes); for LES3 that is the
// Roaring bitmaps plus the group-membership arrays (ids and sizes),
// slightly more than the bitmap-only number the ablation bench tracks.
// The query leg runs δ = 0.3 Range over a fixed query sample and reports
// QPS plus the verification counters — candidates verified and candidates
// skipped by the size filter without touching a token
// (QueryStats::candidates_size_skipped; always 0 on the baselines, which
// have no group size order to exploit).
//
// Expected shape (paper): the TGM is by far the smallest (up to 90% less);
// LES3's construction time is dominated by (one-time) model training.

#include <cstdio>
#include <memory>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "datagen/analogs.h"

int main() {
  using namespace les3;
  TableReporter table({"dataset", "method", "index_bytes", "index",
                       "build_s", "range_qps", "avg_candidates",
                       "avg_size_skipped"});
  const std::vector<std::pair<const char*, const char*>> methods{
      {"LES3(TGM)", "les3"},
      {"DualTrans", "dualtrans"},
      {"InvIdx", "invidx"},
  };
  constexpr double kRangeDelta = 0.3;
  constexpr size_t kRangeQueries = 200;
  for (const auto& spec : datagen::MemoryAnalogSpecs()) {
    auto db = std::make_shared<SetDatabase>(datagen::GenerateAnalog(spec, 3));
    uint32_t groups = bench::DefaultGroups(db->size());

    api::EngineOptions options;
    options.num_groups = groups;
    options.cascade = bench::BenchCascade(groups);

    for (const auto& [label, backend] : methods) {
      WallTimer timer;
      auto engine =
          api::EngineBuilder::Build(db, backend, options).ValueOrDie();
      double build_s = timer.Seconds();

      uint64_t candidates = 0, size_skipped = 0;
      WallTimer query_timer;
      for (size_t q = 0; q < kRangeQueries; ++q) {
        auto result = engine->Range(
            db->set(static_cast<SetId>((q * 131) % db->size())), kRangeDelta);
        candidates += result.stats.candidates_verified;
        size_skipped += result.stats.candidates_size_skipped;
      }
      double qps = kRangeQueries / query_timer.Seconds();
      table.Add(spec.name, label, engine->IndexBytes(),
                HumanBytes(engine->IndexBytes()), build_s, qps,
                candidates / static_cast<double>(kRangeQueries),
                size_skipped / static_cast<double>(kRangeQueries));
    }
    std::printf("%s done\n", spec.name.c_str());
  }
  bench::Emit(table, "Figure 11: index size, construction time, and the "
                     "delta=0.3 Range leg",
              "fig11_index.csv");
  return 0;
}
