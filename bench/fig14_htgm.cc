// Figure 14 — TGM vs HTGM under a power-law similarity distribution.
//
// Synthetic databases of 20 k sets / 20 k tokens with pairwise similarity
// shaped by α (paper Section 7.7); a cascade trained from a single root to
// 256 groups provides the nested levels: TGM = level-8 partitioning alone,
// HTGM = level-5 (32 groups) + level-8 (256 groups). We report the
// HTGM/TGM cost ratios for index access (cells probed) and computation
// (similarity evaluations), kNN k = 10.
//
// Expected shape (paper): ratios fall below 1 as α grows (most sets
// dissimilar -> coarse level prunes aggressively); HTGM overhead dominates
// at small α.

#include <cstdio>

#include "bench_util.h"
#include "datagen/generators.h"
#include "embed/ptr.h"
#include "l2p/cascade.h"
#include "tgm/htgm.h"

int main() {
  using namespace les3;
  TableReporter table({"alpha", "access_ratio", "compute_ratio",
                       "tgm_cells", "htgm_cells"});
  for (double alpha : {1.0, 2.0, 3.0, 4.0}) {
    datagen::PowerLawSimOptions gen;
    gen.num_sets = 20000;
    gen.num_tokens = 20000;
    gen.alpha = alpha;
    gen.seed = 17;
    SetDatabase db = datagen::GeneratePowerLawSimilarity(gen);

    embed::PtrRepresentation ptr(db.num_tokens());
    l2p::CascadeOptions opts = bench::BenchCascade(256);
    opts.use_sorted_init = false;  // single root, 9 levels (paper setup)
    opts.init_groups = 1;
    opts.pairs_per_model = 6000;
    opts.min_group_size = 20;
    l2p::CascadeResult cascade = TrainCascade(db, ptr, opts);
    // Level 5 -> 32 groups, final level -> 256 groups (paper's choices).
    const auto* coarse = &cascade.levels.front();
    for (const auto& level : cascade.levels) {
      if (level.num_groups <= 32) coarse = &level;
    }
    const auto& fine = cascade.levels.back();

    tgm::Htgm flat(db, {{fine.assignment, fine.num_groups}});
    tgm::Htgm hier(db, {{coarse->assignment, coarse->num_groups},
                        {fine.assignment, fine.num_groups}});

    auto query_ids = datagen::SampleQueryIds(db, 60, 5);
    tgm::HtgmQueryCost flat_cost, hier_cost;
    for (SetId qid : query_ids) {
      flat.Knn(db, db.set(qid), 10, SimilarityMeasure::kJaccard,
               &flat_cost);
      hier.Knn(db, db.set(qid), 10, SimilarityMeasure::kJaccard,
               &hier_cost);
      flat.Range(db, db.set(qid), 0.5, SimilarityMeasure::kJaccard,
                 &flat_cost);
      hier.Range(db, db.set(qid), 0.5, SimilarityMeasure::kJaccard,
                 &hier_cost);
    }
    double access_ratio = static_cast<double>(hier_cost.cells_accessed) /
                          static_cast<double>(flat_cost.cells_accessed);
    double compute_ratio = static_cast<double>(hier_cost.sims_computed) /
                           static_cast<double>(flat_cost.sims_computed);
    table.Add(alpha, access_ratio, compute_ratio,
              static_cast<unsigned long long>(flat_cost.cells_accessed),
              static_cast<unsigned long long>(hier_cost.cells_accessed));
    std::printf("alpha %.1f: access ratio %.3f compute ratio %.3f\n", alpha,
                access_ratio, compute_ratio);
  }
  bench::Emit(table, "Figure 14: HTGM/TGM cost ratios vs alpha",
              "fig14_htgm.csv");
  return 0;
}
