// Batched vs sequential probe throughput (docs/query_pipeline.md,
// "Batched probes").
//
// On the KOSARAK analog, the same query workload is answered two ways:
// one Knn/Range call per query (the baseline the solo path has always
// taken) and KnnBatch/RangeBatch over groups of 1 / 8 / 64 / 256
// queries, on two engine configurations:
//
//   les3     a single index (990 groups, bench cascade): isolates the
//            fused column walk itself — batching wins only what probe
//            fusion saves, so the speedup here is bounded by the probe's
//            share of query time (small on kNN, where verification
//            dominates);
//   sharded4 sharded_les3 with 4 shards and heuristic group counts —
//            the CI serving snapshot configuration. Here batching
//            additionally amortizes the per-query scatter-gather tax
//            (one pool dispatch per (query, shard) collapses to one per
//            (chunk, shard)), which is where the headline Range speedup
//            comes from.
//
// The token-overlap regimes vary how much of the column walk a batch
// can share:
//
//   zipf  queries sampled from the database itself: the natural KOSARAK
//         workload, Zipf-headed, the acceptance regime;
//   hot   synthetic queries drawn from the 32 hottest tokens: every
//         column is shared by most of the batch (best case);
//   cold  synthetic queries on disjoint tail-token ranges: no column is
//         shared, so batching can only win on loop overhead (worst
//         case — the floor must still be ~1x, never a regression cliff).
//
// Every batched run is first checked byte-exact against the sequential
// answers (ids and similarity bit patterns); a mismatch aborts the
// bench. Output: an aligned table with speedups, micro_batch_probe.csv,
// and BENCH_batch_probe.json rows in the shared BatchReport schema for
// the CI perf-smoke artifact (argv[1] overrides the JSON path).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "datagen/analogs.h"

namespace les3 {
namespace {

constexpr size_t kNumQueries = 512;
constexpr size_t kKnnK = 10;
constexpr double kRangeDelta = 0.8;
constexpr int kRepeats = 3;  // best-of, to shed scheduler noise

std::vector<SetRecord> RegimeQueries(const SetDatabase& db,
                                     const std::string& regime) {
  std::vector<SetRecord> queries;
  queries.reserve(kNumQueries);
  if (regime == "zipf") {
    for (SetId qid : datagen::SampleQueryIds(db, kNumQueries, /*seed=*/11)) {
      queries.emplace_back(db.set(qid));
    }
  } else if (regime == "hot") {
    // Eight tokens per query from the 32 hottest ids (Zipf orders token
    // popularity by id), strided so consecutive queries overlap heavily
    // without being identical.
    for (size_t i = 0; i < kNumQueries; ++i) {
      std::vector<TokenId> tokens;
      for (size_t j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<TokenId>((i * 3 + j * 5) % 32));
      }
      queries.push_back(SetRecord::FromTokens(std::move(tokens)));
    }
  } else {  // cold: disjoint 8-token windows in the tail half
    const TokenId tail = db.num_tokens() / 2;
    for (size_t i = 0; i < kNumQueries; ++i) {
      std::vector<TokenId> tokens;
      TokenId base = static_cast<TokenId>(
          tail + (i * 8) % (db.num_tokens() - tail - 8));
      for (TokenId j = 0; j < 8; ++j) tokens.push_back(base + j);
      queries.push_back(SetRecord::FromSortedTokens(std::move(tokens)));
    }
  }
  return queries;
}

struct RunStats {
  double wall_s = 0.0;
  uint64_t hits = 0;
  uint64_t verified = 0;
  uint64_t size_skipped = 0;
  std::vector<double> ms;  // per-query latency samples
  std::vector<std::vector<Hit>> answers;
};

void Absorb(RunStats* run, const api::QueryResult& result) {
  run->hits += result.hits.size();
  run->verified += result.stats.candidates_verified;
  run->size_skipped += result.stats.candidates_size_skipped;
  run->ms.push_back(result.TotalMs());
  run->answers.push_back(result.hits);
}

/// One pass over the workload, batched into groups of `batch` (0 = the
/// sequential per-query baseline). Chunks are pre-sliced so the timed
/// region holds only engine work.
RunStats RunOnce(const api::SearchEngine& engine,
                 const std::vector<SetRecord>& queries, bool knn,
                 size_t batch) {
  RunStats run;
  run.ms.reserve(queries.size());
  run.answers.reserve(queries.size());
  if (batch == 0) {
    WallTimer timer;
    for (const SetRecord& q : queries) {
      Absorb(&run, knn ? engine.Knn(q.view(), kKnnK)
                       : engine.Range(q.view(), kRangeDelta));
    }
    run.wall_s = timer.Seconds();
    return run;
  }
  std::vector<std::vector<SetRecord>> chunks;
  for (size_t i = 0; i < queries.size(); i += batch) {
    size_t n = std::min(batch, queries.size() - i);
    chunks.emplace_back(queries.begin() + i, queries.begin() + i + n);
  }
  WallTimer timer;
  for (const auto& chunk : chunks) {
    auto results = knn ? engine.KnnBatch(chunk, kKnnK)
                       : engine.RangeBatch(chunk, kRangeDelta);
    for (const auto& result : results) Absorb(&run, result);
  }
  run.wall_s = timer.Seconds();
  return run;
}

bool SameAnswers(const RunStats& a, const RunStats& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t q = 0; q < a.answers.size(); ++q) {
    if (a.answers[q].size() != b.answers[q].size()) return false;
    for (size_t r = 0; r < a.answers[q].size(); ++r) {
      if (a.answers[q][r].first != b.answers[q][r].first) return false;
      // Bit comparison, not tolerance: == on doubles is exactly that.
      if (a.answers[q][r].second != b.answers[q][r].second) return false;
    }
  }
  return true;
}

bench::BatchReport MakeReport(const std::string& label, bool knn,
                              const RunStats& run) {
  bench::BatchReport report;
  report.tool = "micro_batch_probe";
  report.label = label;
  report.mode = knn ? "knn" : "range";
  report.param = knn ? static_cast<double>(kKnnK) : kRangeDelta;
  report.clients = 1;
  report.latency = bench::SummarizeLatencies(run.ms, run.wall_s);
  report.hits_total = run.hits;
  report.have_engine_stats = true;
  report.candidates_verified = run.verified;
  report.candidates_size_skipped = run.size_skipped;
  return report;
}

}  // namespace
}  // namespace les3

int main(int argc, char** argv) {
  using namespace les3;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_batch_probe.json";

  const datagen::AnalogSpec& spec = datagen::AnalogSpecByName("KOSARAK");
  auto db = std::make_shared<SetDatabase>(datagen::GenerateAnalog(spec, 3));
  std::printf("KOSARAK analog: %zu sets, %u tokens\n", db->size(),
              db->num_tokens());

  struct EngineSpec {
    std::string name;
    api::EngineOptions options;
  };
  std::vector<EngineSpec> specs(2);
  specs[0].name = "les3";
  specs[0].options.backend = api::Backend::kLes3;
  specs[0].options.num_groups = bench::DefaultGroups(db->size());
  specs[0].options.cascade = bench::BenchCascade(specs[0].options.num_groups);
  specs[1].name = "sharded4";  // the CI serving snapshot configuration
  specs[1].options.backend = api::Backend::kShardedLes3;
  specs[1].options.num_shards = 4;

  TableReporter table({"engine", "regime", "mode", "batch", "qps", "speedup",
                       "p50_ms", "p95_ms"});
  std::vector<bench::BatchReport> reports;
  for (const EngineSpec& spec_entry : specs) {
    WallTimer build_timer;
    auto built = api::EngineBuilder::Build(db, spec_entry.options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const api::SearchEngine& engine = *built.value();
    std::printf("%s built in %.1fs (%s)\n", spec_entry.name.c_str(),
                build_timer.Seconds(), engine.Describe().c_str());

    for (const std::string& regime : {std::string("zipf"), std::string("hot"),
                                      std::string("cold")}) {
      std::vector<SetRecord> queries = RegimeQueries(*db, regime);
      for (bool knn : {true, false}) {
        const char* mode = knn ? "knn" : "range";
        RunStats seq = RunOnce(engine, queries, knn, 0);
        for (int r = 1; r < kRepeats; ++r) {
          RunStats again = RunOnce(engine, queries, knn, 0);
          if (again.wall_s < seq.wall_s) seq = std::move(again);
        }
        bench::BatchLatency seq_lat =
            bench::SummarizeLatencies(seq.ms, seq.wall_s);
        table.Add(spec_entry.name, regime, mode, 0, seq_lat.qps, 1.0,
                  seq_lat.p50_ms, seq_lat.p95_ms);
        reports.push_back(
            MakeReport(spec_entry.name + "/" + regime + "/seq", knn, seq));

        for (size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
          RunStats best = RunOnce(engine, queries, knn, batch);
          if (!SameAnswers(seq, best)) {
            std::fprintf(stderr,
                         "FATAL: batched answers diverge from sequential "
                         "(%s %s %s batch=%zu)\n",
                         spec_entry.name.c_str(), regime.c_str(), mode, batch);
            return 1;
          }
          for (int r = 1; r < kRepeats; ++r) {
            RunStats again = RunOnce(engine, queries, knn, batch);
            if (again.wall_s < best.wall_s) best = std::move(again);
          }
          bench::BatchLatency lat =
              bench::SummarizeLatencies(best.ms, best.wall_s);
          double speedup = seq_lat.qps > 0.0 ? lat.qps / seq_lat.qps : 0.0;
          table.Add(spec_entry.name, regime, mode, batch, lat.qps, speedup,
                    lat.p50_ms, lat.p95_ms);
          reports.push_back(MakeReport(spec_entry.name + "/" + regime +
                                           "/batch" + std::to_string(batch),
                                       knn, best));
        }
      }
    }
  }

  bench::Emit(table, "Batched vs sequential probe QPS (KOSARAK analog)",
              "micro_batch_probe.csv");
  Status st = bench::WriteBatchReports(reports, json_path);
  if (st.ok()) {
    std::printf("  [json] %s\n", json_path.c_str());
  } else {
    std::printf("  [json] failed: %s\n", st.ToString().c_str());
  }
  return 0;
}
