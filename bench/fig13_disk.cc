// Figure 13 — disk-based comparison on the FS and PMC analogs.
//
// All four methods run with data charged to the HDD cost model
// (storage/disk.h): LES3 reads surviving groups as contiguous extents,
// brute force scans sequentially, InvIdx fetches postings + random
// candidate reads, DualTrans random-reads R-tree nodes + candidates.
// Reported latency = simulated I/O + CPU.
//
// Expected shape (paper): LES3 2-10x faster; DualTrans/InvIdx lose to the
// sequential brute-force scan over wide parameter ranges because of random
// I/O.

#include <cstdio>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "l2p/l2p.h"
#include "storage/disk_search.h"

int main() {
  using namespace les3;
  TableReporter range_table(
      {"dataset", "method", "delta", "total_ms", "io_ms", "seeks"});
  TableReporter knn_table(
      {"dataset", "method", "k", "total_ms", "io_ms", "seeks"});
  const std::vector<double> deltas{0.5, 0.7, 0.9};
  const std::vector<size_t> ks{1, 10, 50, 100};

  for (const auto& spec : datagen::DiskAnalogSpecs()) {
    SetDatabase db = datagen::GenerateAnalog(spec, 3);
    auto query_ids = datagen::SampleQueryIds(db, 25, 5);
    // Disk-optimal n is far smaller than memory-optimal n (the paper picks
    // n per setting for the shortest latency): each surviving group costs a
    // seek, so groups must be large enough that sequential transfer — not
    // seeking — dominates. 128 groups ≈ 200-700 KiB extents here.
    uint32_t groups = 128;

    l2p::L2PPartitioner l2p(bench::BenchCascade(groups));
    auto part = l2p.Partition(db, groups);
    storage::DiskLes3 les3_disk(&db, part.assignment, part.num_groups,
                                SimilarityMeasure::kJaccard);
    storage::DiskBruteForce brute(&db, SimilarityMeasure::kJaccard);
    storage::DiskInvIdx invidx(&db, {});
    storage::DiskDualTrans dualtrans(&db, {});
    std::printf("%s (%zu sets): disk stores ready\n", spec.name.c_str(),
                db.size());

    struct Agg {
      double total_ms = 0, io_ms = 0;
      uint64_t seeks = 0;
      void Take(const storage::DiskQueryResult& r) {
        total_ms += r.TotalMs();
        io_ms += r.io_ms;
        seeks += r.seeks;
      }
      void Row(TableReporter* t, const std::string& ds, const char* m,
               const std::string& param, size_t n) {
        t->AddRow({ds, m, param, TableReporter::Format(total_ms / n),
                   TableReporter::Format(io_ms / n),
                   TableReporter::Format(static_cast<double>(seeks) / n)});
      }
    };

    auto run_all = [&](auto&& runner, const char* name) {
      for (double delta : deltas) {
        Agg agg;
        for (SetId qid : query_ids) {
          agg.Take(runner.Range(db.set(qid), delta));
        }
        agg.Row(&range_table, spec.name, name,
                TableReporter::Format(delta), query_ids.size());
      }
      for (size_t k : ks) {
        Agg agg;
        for (SetId qid : query_ids) agg.Take(runner.Knn(db.set(qid), k));
        agg.Row(&knn_table, spec.name, name, std::to_string(k),
                query_ids.size());
      }
      std::printf("  %s done\n", name);
    };
    run_all(les3_disk, "LES3");
    run_all(brute, "BruteForce");
    run_all(invidx, "InvIdx");
    run_all(dualtrans, "DualTrans");
  }
  bench::Emit(range_table, "Figure 13 (left): disk-based range queries",
              "fig13_range.csv");
  bench::Emit(knn_table, "Figure 13 (right): disk-based kNN queries",
              "fig13_knn.csv");
  return 0;
}
