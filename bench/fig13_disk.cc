// Figure 13 — disk-based comparison on the FS and PMC analogs, through
// the unified SearchEngine API: the disk_* backends charge every data
// access to the HDD cost model (storage/disk.h) and report it in
// QueryResult::io.
//
// Expected shape (paper): LES3 2-10x faster; DualTrans/InvIdx lose to the
// sequential brute-force scan over wide parameter ranges because of random
// I/O.

#include <cstdio>
#include <memory>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "datagen/analogs.h"

int main() {
  using namespace les3;
  TableReporter range_table(
      {"dataset", "method", "delta", "total_ms", "io_ms", "seeks"});
  TableReporter knn_table(
      {"dataset", "method", "k", "total_ms", "io_ms", "seeks"});
  const std::vector<double> deltas{0.5, 0.7, 0.9};
  const std::vector<size_t> ks{1, 10, 50, 100};
  const std::vector<std::pair<const char*, const char*>> methods{
      {"LES3", "disk_les3"},
      {"BruteForce", "disk_brute_force"},
      {"InvIdx", "disk_invidx"},
      {"DualTrans", "disk_dualtrans"},
  };

  for (const auto& spec : datagen::DiskAnalogSpecs()) {
    auto db = std::make_shared<SetDatabase>(datagen::GenerateAnalog(spec, 3));
    auto query_ids = datagen::SampleQueryIds(*db, 25, 5);
    // Disk-optimal n is far smaller than memory-optimal n (the paper picks
    // n per setting for the shortest latency): each surviving group costs a
    // seek, so groups must be large enough that sequential transfer — not
    // seeking — dominates. 128 groups ≈ 200-700 KiB extents here.
    api::EngineOptions options;
    options.num_groups = 128;
    options.cascade = bench::BenchCascade(options.num_groups);
    std::printf("%s (%zu sets): building disk engines\n", spec.name.c_str(),
                db->size());

    struct Agg {
      double total_ms = 0, io_ms = 0;
      uint64_t seeks = 0;
      void Take(const api::QueryResult& r) {
        total_ms += r.TotalMs();
        io_ms += r.io->io_ms;
        seeks += r.io->seeks;
      }
      void Row(TableReporter* t, const std::string& ds, const char* m,
               const std::string& param, size_t n) {
        t->AddRow({ds, m, param, TableReporter::Format(total_ms / n),
                   TableReporter::Format(io_ms / n),
                   TableReporter::Format(static_cast<double>(seeks) / n)});
      }
    };

    for (const auto& [label, backend] : methods) {
      auto engine =
          api::EngineBuilder::Build(db, backend, options).ValueOrDie();
      for (double delta : deltas) {
        Agg agg;
        for (SetId qid : query_ids) {
          agg.Take(engine->Range(db->set(qid), delta));
        }
        agg.Row(&range_table, spec.name, label, TableReporter::Format(delta),
                query_ids.size());
      }
      for (size_t k : ks) {
        Agg agg;
        for (SetId qid : query_ids) agg.Take(engine->Knn(db->set(qid), k));
        agg.Row(&knn_table, spec.name, label, std::to_string(k),
                query_ids.size());
      }
      std::printf("  %s done\n", label);
    }
  }
  bench::Emit(range_table, "Figure 13 (left): disk-based range queries",
              "fig13_range.csv");
  bench::Emit(knn_table, "Figure 13 (right): disk-based kNN queries",
              "fig13_knn.csv");
  return 0;
}
