// Shard scaling — build time and query throughput of the sharded
// scatter-gather engine vs shard count, on the KOSARAK analog (the
// dataset whose Figure 7 build time motivates parallel build).
//
// For each shard count S in {1, 2, 4, 8}: build a sharded_les3 engine
// (per-shard L2P training runs concurrently across shards), then run a
// kNN batch through the striped (query, shard) pool and summarize QPS
// and per-query latency percentiles with the shared bench helper —
// exactly what `les3_cli batch` reports.
//
// Expected shape: build time improves monotonically with shard count
// (per-shard training budgets scale with shard size, and shards build
// concurrently on multi-core machines) while tail latency (p95/p99)
// drops steeply — each probe scans a fraction of the groups. Batch QPS
// pays a scatter-gather tax (every query fans out S probe tasks and
// verifies up to S*k candidates), steepest when cores are scarce — the
// sharded engine buys build speed, tail latency, and insert-concurrent
// serving, not raw single-machine batch throughput.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "datagen/analogs.h"

int main() {
  using namespace les3;
  const datagen::AnalogSpec& spec = datagen::AnalogSpecByName("KOSARAK");
  auto db = std::make_shared<SetDatabase>(datagen::GenerateAnalog(spec, 3));
  std::printf("KOSARAK analog: %zu sets, %u tokens\n", db->size(),
              db->num_tokens());

  std::vector<SetRecord> queries;
  for (SetId qid : datagen::SampleQueryIds(*db, 200, /*seed=*/11)) {
    queries.emplace_back(db->set(qid));
  }

  TableReporter table({"shards", "build_s", "build_speedup", "qps", "p50_ms",
                       "p95_ms", "p99_ms", "index_bytes"});
  double build_s_1shard = 0.0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    api::EngineOptions options;
    options.backend = api::Backend::kShardedLes3;
    options.num_shards = shards;
    // Per-shard group count so total groups stay comparable across runs;
    // init_groups scales with the target (1/8 ratio at every shard count)
    // so each row trains a comparable cascade — BenchCascade's fixed 128
    // would exceed small per-shard targets and skip training entirely.
    options.num_groups = bench::DefaultGroups(db->size() / shards);
    options.cascade = bench::BenchCascade(options.num_groups);
    options.cascade.init_groups =
        std::max(16u, options.num_groups / 8);
    options.cascade.num_threads = 0;  // resolved per shard by the builder

    WallTimer build_timer;
    auto engine = api::EngineBuilder::Build(db, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    double build_s = build_timer.Seconds();
    if (shards == 1) build_s_1shard = build_s;

    WallTimer query_timer;
    auto results = engine.value()->KnnBatch(queries, 10);
    bench::BatchLatency summary =
        bench::SummarizeBatch(results, query_timer.Seconds());

    table.Add(shards, build_s,
              build_s > 0.0 ? build_s_1shard / build_s : 0.0, summary.qps,
              summary.p50_ms, summary.p95_ms, summary.p99_ms,
              engine.value()->IndexBytes());
    std::printf("shards=%u done (%s)\n", shards,
                engine.value()->Describe().c_str());
  }
  bench::Emit(table, "Shard scaling: build time and QPS vs shard count",
              "shard_scaling.csv");
  return 0;
}
