// Figure 9 — L2P vs algorithmic partitioning approaches.
//
// On a KOSARAK analog sample, every partitioner produces the same number of
// groups; we report partitioning time, working memory, the achieved GPO,
// and the kNN (k = 10) query time through the resulting TGM index.
//
// Expected shape (paper): L2P gives the fastest search while using a small
// fraction of PAR-G's time (~-80%) and space (~-99%); PAR-C/D/A trail on
// search time due to local-optimum issues.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "l2p/l2p.h"
#include "partition/metrics.h"
#include "partition/par_a.h"
#include "partition/par_c.h"
#include "partition/par_d.h"
#include "partition/par_g.h"
#include "search/les3_index.h"

int main() {
  using namespace les3;
  using partition::Partitioner;
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  // 40 k sets keeps the quadratic-leaning baselines tractable; the paper
  // runs the full dataset on PaToH-class tooling.
  SetDatabase db = datagen::GenerateAnalogSample(spec, 40000, 3);
  const uint32_t kGroups = 256;
  auto query_ids = datagen::SampleQueryIds(db, 200, 5);

  TableReporter table({"method", "partition_s", "memory", "gpo_estimate",
                       "knn10_ms", "knn_pe"});

  auto evaluate = [&](Partitioner& partitioner) {
    partition::PartitionResult result = partitioner.Partition(db, kGroups);
    double gpo =
        partition::EstimateGpo(db, result.assignment, result.num_groups,
                               SimilarityMeasure::kJaccard, 500, 7);
    search::Les3Index index(db, result.assignment, result.num_groups);
    auto knn = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Knn(q, 10, &s);
      return s;
    });
    table.Add(partitioner.name(), result.seconds,
              HumanBytes(result.working_memory_bytes), gpo, knn.avg_ms,
              knn.avg_pe);
    std::printf("%-6s partition %.2fs mem %s knn %.3fms pe %.4f\n",
                partitioner.name().c_str(), result.seconds,
                HumanBytes(result.working_memory_bytes).c_str(), knn.avg_ms,
                knn.avg_pe);
  };

  {
    // Init at 64 so the cascade genuinely trains two levels of models.
    l2p::CascadeOptions opts = bench::BenchCascade(kGroups);
    opts.init_groups = 64;
    l2p::L2PPartitioner l2p(opts);
    evaluate(l2p);
  }
  {
    partition::ParGOptions opts;
    opts.knn_k = 10;  // PAR-G is specialized for the k = 10 workload
    partition::ParG par_g(opts);
    evaluate(par_g);
  }
  {
    partition::ParC par_c;
    evaluate(par_c);
  }
  {
    partition::ParD par_d;
    evaluate(par_d);
  }
  {
    partition::ParA par_a;
    evaluate(par_a);
  }

  bench::Emit(table, "Figure 9: partitioning methods (KOSARAK sample)",
              "fig9_partitioning.csv");

  // Scaling trend: the paper's regime (L2P ~80% cheaper than PAR-G) arises
  // at full |D|, where the kNN-graph construction + multilevel cut grow
  // superlinearly while L2P grows with the number of groups only. The sweep
  // below shows the growth-rate gap at reachable scales.
  TableReporter scaling({"num_sets", "L2P_s", "PAR-G_s"});
  for (uint32_t n : {10000u, 20000u, 40000u}) {
    SetDatabase sample = datagen::GenerateAnalogSample(spec, n, 3);
    uint32_t groups = std::max<uint32_t>(16, n / 156);
    l2p::CascadeOptions opts = bench::BenchCascade(groups);
    opts.init_groups = std::min<uint32_t>(64, groups / 2);
    l2p::L2PPartitioner l2p(opts);
    auto lr = l2p.Partition(sample, groups);
    partition::ParGOptions gopts;
    gopts.knn_k = 10;
    partition::ParG par_g(gopts);
    auto gr = par_g.Partition(sample, groups);
    scaling.Add(n, lr.seconds, gr.seconds);
    std::printf("scale %u: L2P %.2fs PAR-G %.2fs\n", n, lr.seconds,
                gr.seconds);
  }
  bench::Emit(scaling, "Figure 9 (scaling): partition time vs |D|",
              "fig9_scaling.csv");
  return 0;
}
