// Ablations over the design choices DESIGN.md calls out:
//   (a) Roaring run-compression of the TGM (size + matched-count cost);
//   (b) sorted initialization of the cascade vs training from a single
//       root (paper Section 7.1, "Initialization");
//   (c) training pairs per model (the paper's claim that 40 k samples
//       suffice and more do not help, Section 7.1);
//   (d) similarity measure (Jaccard / Dice / Cosine) through the same
//       index, exercising the Theorem 3.1 generality.

#include <cstdio>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "embed/ptr.h"
#include "l2p/cascade.h"
#include "search/les3_index.h"
#include "tgm/tgm.h"

namespace les3 {
namespace {

SetDatabase BenchDb() {
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  return datagen::GenerateAnalogSample(spec, 40000, 3);
}

void AblateCompression(const SetDatabase& db,
                       const std::vector<GroupId>& assignment,
                       uint32_t groups) {
  TableReporter table({"variant", "tgm_bytes", "tgm", "matched_ms"});
  auto query_ids = datagen::SampleQueryIds(db, 500, 5);
  for (bool compress : {false, true}) {
    tgm::Tgm index(db, assignment, groups);
    if (compress) index.RunOptimize();
    WallTimer timer;
    std::vector<uint32_t> counts;
    for (SetId qid : query_ids) index.MatchedCounts(db.set(qid), &counts);
    double ms = timer.Millis() / static_cast<double>(query_ids.size());
    table.Add(compress ? "roaring+run" : "roaring",
              index.BitmapBytes(), HumanBytes(index.BitmapBytes()), ms);
  }
  bench::Emit(table, "Ablation (a): TGM run compression",
              "ablation_compression.csv");
}

void AblateInitialization(const SetDatabase& db, uint32_t groups) {
  TableReporter table({"init", "train_s", "models", "knn10_pe"});
  auto query_ids = datagen::SampleQueryIds(db, 100, 5);
  embed::PtrRepresentation ptr(db.num_tokens());
  for (bool sorted_init : {true, false}) {
    l2p::CascadeOptions opts = bench::BenchCascade(groups);
    opts.use_sorted_init = sorted_init;
    if (!sorted_init) opts.init_groups = 1;
    l2p::CascadeResult cascade = TrainCascade(db, ptr, opts);
    const auto& level = cascade.levels.back();
    search::Les3Index index(db, level.assignment, level.num_groups);
    auto agg = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Knn(q, 10, &s);
      return s;
    });
    table.Add(sorted_init ? "sorted-128" : "single-root",
              cascade.train_seconds,
              static_cast<unsigned long long>(cascade.models_trained),
              agg.avg_pe);
  }
  bench::Emit(table, "Ablation (b): cascade initialization",
              "ablation_init.csv");
}

void AblatePairBudget(const SetDatabase& db, uint32_t groups) {
  TableReporter table({"pairs_per_model", "train_s", "knn10_pe"});
  auto query_ids = datagen::SampleQueryIds(db, 100, 5);
  embed::PtrRepresentation ptr(db.num_tokens());
  for (size_t pairs : {2500u, 10000u, 40000u}) {
    l2p::CascadeOptions opts = bench::BenchCascade(groups);
    opts.pairs_per_model = pairs;
    l2p::CascadeResult cascade = TrainCascade(db, ptr, opts);
    const auto& level = cascade.levels.back();
    search::Les3Index index(db, level.assignment, level.num_groups);
    auto agg = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Knn(q, 10, &s);
      return s;
    });
    table.Add(static_cast<unsigned long long>(pairs),
              cascade.train_seconds, agg.avg_pe);
  }
  bench::Emit(table, "Ablation (c): training pairs per model",
              "ablation_pairs.csv");
}

void AblateMeasure(const SetDatabase& db,
                   const std::vector<GroupId>& assignment, uint32_t groups) {
  TableReporter table({"measure", "knn10_ms", "pe", "range0.7_ms"});
  auto query_ids = datagen::SampleQueryIds(db, 100, 5);
  for (auto measure : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                       SimilarityMeasure::kCosine}) {
    search::Les3Index index(db, assignment, groups, measure);
    auto knn = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Knn(q, 10, &s);
      return s;
    });
    auto range = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Range(q, 0.7, &s);
      return s;
    });
    table.Add(ToString(measure), knn.avg_ms, knn.avg_pe, range.avg_ms);
  }
  bench::Emit(table, "Ablation (d): similarity measures",
              "ablation_measures.csv");
}

}  // namespace
}  // namespace les3

int main() {
  using namespace les3;
  SetDatabase db = BenchDb();
  const uint32_t groups = 400;
  l2p::CascadeOptions opts = bench::BenchCascade(groups);
  embed::PtrRepresentation ptr(db.num_tokens());
  l2p::CascadeResult cascade = TrainCascade(db, ptr, opts);
  const auto& level = cascade.levels.back();
  std::printf("base cascade: %u groups in %.1fs\n", level.num_groups,
              cascade.train_seconds);

  AblateCompression(db, level.assignment, level.num_groups);
  AblateInitialization(db, groups);
  AblatePairBudget(db, groups);
  AblateMeasure(db, level.assignment, level.num_groups);
  return 0;
}
