// Table 2 — dataset statistics.
//
// Generates every dataset analog and prints the paper's Table 2 columns
// (|D|, max/min/avg set size, |T|) for the analog next to the paper's
// published numbers, so the scale factor of each substitution is explicit.

#include <cstdio>

#include "bench_util.h"
#include "core/stats.h"
#include "datagen/analogs.h"

int main() {
  using namespace les3;
  TableReporter table({"dataset", "paper |D|", "analog |D|", "scale",
                       "max", "min", "avg (paper)", "avg (analog)",
                       "paper |T|", "analog |T|"});
  for (const auto& spec : datagen::AllAnalogSpecs()) {
    WallTimer timer;
    SetDatabase db = datagen::GenerateAnalog(spec);
    DatasetStats stats = ComputeStats(db);
    std::printf("generated %s in %.1fs\n", spec.name.c_str(),
                timer.Seconds());
    table.Add(spec.name, spec.paper_num_sets, stats.num_sets,
              std::string("1/") + std::to_string(spec.scale),
              static_cast<unsigned long long>(stats.max_set_size),
              static_cast<unsigned long long>(stats.min_set_size),
              spec.avg_set_size, stats.avg_set_size, spec.paper_num_tokens,
              stats.num_tokens);
  }
  bench::Emit(table, "Table 2: dataset statistics (analogs vs paper)",
              "table2_datasets.csv");
  return 0;
}
