// Figure 8 — PTR vs other set-representation techniques.
//
// On a sampled KOSARAK analog (the paper uses a 5% sample because PCA/MDS
// cannot scale), each representation feeds the same L2P cascade; we report
// the representation-construction time and the resulting query times for
// kNN (k = 10) and range (δ = 0.7).
//
// Expected shape (paper): PTR builds 10-20000x faster than PCA/MDS with
// similar-or-better search time; Binary Encoding and PTR-half search slower.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "embed/binary_encoding.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "embed/ptr.h"
#include "l2p/cascade.h"
#include "search/les3_index.h"

int main() {
  using namespace les3;
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  // 5% of the analog (the paper samples 5% of KOSARAK).
  SetDatabase db = datagen::GenerateAnalogSample(spec, spec.num_sets / 20, 3);
  auto query_ids = datagen::SampleQueryIds(db, 200, 5);
  const uint32_t kGroups = 32;

  TableReporter table({"representation", "dim", "embed_ms", "knn10_ms",
                       "range0.7_ms", "knn_pe"});

  auto evaluate = [&](const embed::SetRepresentation& rep, double fit_ms) {
    // Embedding cost: fit (PCA/MDS) + transform of the whole sample.
    WallTimer embed_timer;
    ml::Matrix reps = embed::EmbedDatabase(rep, db);
    double embed_ms = fit_ms + embed_timer.Millis();

    l2p::CascadeOptions opts = bench::BenchCascade(kGroups);
    opts.init_groups = 8;
    opts.min_group_size = 20;
    l2p::CascadeResult cascade = TrainCascade(db, rep, opts);
    const auto& final_level = cascade.levels.back();
    search::Les3Index index(db, final_level.assignment,
                            final_level.num_groups);

    search::QueryStats stats;
    double pe = 0;
    auto knn = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Knn(q, 10, &s);
      return s;
    });
    auto range = bench::RunQueries(db, query_ids, [&](SetView q) {
      search::QueryStats s;
      index.Range(q, 0.7, &s);
      return s;
    });
    (void)stats;
    (void)pe;
    table.Add(rep.name(), static_cast<unsigned long long>(rep.dim()),
              embed_ms, knn.avg_ms, range.avg_ms, knn.avg_pe);
    std::printf("%-10s embed %.1fms knn %.3fms range %.3fms\n",
                rep.name().c_str(), embed_ms, knn.avg_ms, range.avg_ms);
  };

  {
    embed::PtrRepresentation ptr(db.num_tokens());
    evaluate(ptr, 0.0);
  }
  {
    embed::PtrHalfRepresentation half(db.num_tokens());
    evaluate(half, 0.0);
  }
  {
    embed::BinaryEncoding binary(db.size());
    evaluate(binary, 0.0);
  }
  {
    WallTimer fit;
    embed::PcaOptions popts;
    popts.dim = 16;
    embed::PcaRepresentation pca(db, popts);
    evaluate(pca, fit.Millis());
  }
  {
    WallTimer fit;
    embed::MdsOptions mopts;
    mopts.dim = 16;
    mopts.num_landmarks = 64;
    embed::MdsRepresentation mds(db, mopts);
    evaluate(mds, fit.Millis());
  }

  bench::Emit(table,
              "Figure 8: set representation techniques (sampled KOSARAK)",
              "fig8_representations.csv");
  return 0;
}
