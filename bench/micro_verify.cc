// Micro-benchmarks for the verification kernels (core/verify.h): the
// branchless linear merge vs the galloping kernel vs the pre-pipeline
// scalar verifier, across operand-size ratios and token skews, in
// verified pairs per second.
//
// The scalar baseline is the verifier this repo shipped before the
// cache-resident pipeline: a branchy merge that re-evaluates the
// similarity formula (a divide) at every step for its early-exit test.
// The current kernels precompute the integer overlap requirement once
// (MinOverlapForPair) and check it per block, which is where most of the
// per-pair win comes from on small sets.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/simd_dispatch.h"
#include "core/verify.h"
#include "core/verify_simd.h"
#include "datagen/zipf.h"
#include "util/random.h"

namespace les3 {
namespace {

/// The pre-pipeline scalar verifier, kept verbatim as the micro baseline.
VerifyResult VerifyScalarReference(SimilarityMeasure measure, SetView a,
                                   SetView b, double threshold) {
  VerifyResult result;
  if (threshold <= 0.0) {
    result.similarity = Similarity(measure, a, b);
    result.passed = true;
    return result;
  }
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    size_t max_overlap = overlap + std::min(a.size() - i, b.size() - j);
    double best =
        SimilarityFromOverlap(measure, max_overlap, a.size(), b.size());
    if (best < threshold) {
      result.similarity = best;
      result.passed = false;
      return result;
    }
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  result.similarity =
      SimilarityFromOverlap(measure, overlap, a.size(), b.size());
  result.passed = result.similarity >= threshold;
  return result;
}

/// One pre-generated workload: pairs with |small| = base_size and
/// |large| = base_size * ratio, tokens Zipf(skew)-drawn from a shared
/// universe so overlap arises naturally (more skew -> more overlap). Each
/// pair carries a FEASIBLE threshold (80% of its best attainable
/// similarity): an unattainable threshold makes every kernel return after
/// one bound check, which benchmarks the rejection fast path instead of
/// the merge/gallop loops — and the engine's size window already rejects
/// those pairs before a kernel ever runs.
struct PairPool {
  std::vector<std::vector<TokenId>> small;
  std::vector<std::vector<TokenId>> large;
  std::vector<double> thresholds;
  size_t next = 0;
};

PairPool MakePool(size_t base_size, size_t ratio, double skew) {
  constexpr size_t kPairs = 512;
  constexpr uint32_t kUniverse = 4096;
  Rng rng(base_size * 1315423911u + ratio * 2654435761u +
          static_cast<uint64_t>(skew * 977));
  datagen::ZipfSampler zipf(kUniverse, skew);
  PairPool pool;
  auto draw = [&](size_t n) {
    std::vector<TokenId> tokens;
    tokens.reserve(n);
    for (size_t t = 0; t < n; ++t) {
      tokens.push_back(static_cast<TokenId>(zipf.Sample(&rng)));
    }
    std::sort(tokens.begin(), tokens.end());
    return tokens;
  };
  for (size_t p = 0; p < kPairs; ++p) {
    pool.small.push_back(draw(base_size));
    pool.large.push_back(draw(base_size * ratio));
    pool.thresholds.push_back(
        0.8 * MaxSimForSize(SimilarityMeasure::kJaccard, base_size,
                            base_size * ratio));
  }
  return pool;
}

/// Args: (base_size, size_ratio, skew_x10). kernel: 0 = adaptive
/// VerifyThreshold dispatch, 1 = forced merge, 2 = forced gallop,
/// 3 = pre-pipeline scalar.
void VerifyBench(benchmark::State& state, int kernel) {
  const size_t base_size = static_cast<size_t>(state.range(0));
  const size_t ratio = static_cast<size_t>(state.range(1));
  const double skew = state.range(2) / 10.0;
  PairPool pool = MakePool(base_size, ratio, skew);
  for (auto _ : state) {
    size_t p = pool.next++ % pool.small.size();
    SetView a(pool.small[p].data(), pool.small[p].size());
    SetView b(pool.large[p].data(), pool.large[p].size());
    const double kThreshold = pool.thresholds[p];
    VerifyResult v;
    switch (kernel) {
      case 0: v = VerifyThreshold(SimilarityMeasure::kJaccard, a, b,
                                  kThreshold); break;
      case 1: v = VerifyMerge(SimilarityMeasure::kJaccard, a, b,
                              kThreshold); break;
      case 2: v = VerifyGallop(SimilarityMeasure::kJaccard, a, b,
                               kThreshold); break;
      default: v = VerifyScalarReference(SimilarityMeasure::kJaccard, a, b,
                                         kThreshold); break;
    }
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());  // pairs/sec
}

void BM_VerifyAdaptive(benchmark::State& state) { VerifyBench(state, 0); }
void BM_VerifyMerge(benchmark::State& state) { VerifyBench(state, 1); }
void BM_VerifyGallop(benchmark::State& state) { VerifyBench(state, 2); }
void BM_VerifyScalar(benchmark::State& state) { VerifyBench(state, 3); }

#define VERIFY_ARGS                                        \
  ->ArgNames({"base", "ratio", "skew_x10"})                \
      ->Args({8, 1, 7})                                    \
      ->Args({8, 4, 7})                                    \
      ->Args({8, 64, 7})                                   \
      ->Args({64, 1, 7})                                   \
      ->Args({64, 16, 7})                                  \
      ->Args({64, 64, 7})                                  \
      ->Args({8, 1, 11})                                   \
      ->Args({8, 64, 11})                                  \
      ->Args({64, 16, 11})

BENCHMARK(BM_VerifyAdaptive) VERIFY_ARGS;
BENCHMARK(BM_VerifyMerge) VERIFY_ARGS;
BENCHMARK(BM_VerifyGallop) VERIFY_ARGS;
BENCHMARK(BM_VerifyScalar) VERIFY_ARGS;

// ---------------------------------------------------------------------------
// Per-dispatch-level rows (the BENCH_verify_simd.json payload): the same
// VerifyMerge entry point pinned to each SIMD tier this machine supports,
// so scalar vs avx2 vs avx512 pairs/sec compare directly. The pools here
// use DISTINCT tokens (sampled without replacement): the Zipf pools above
// are duplicate-heavy multisets, which the vector kernels deliberately
// route through the scalar duplicate fallback — real corpora are sets,
// and these rows measure the vector fast path those corpora take.

PairPool MakeDistinctPool(size_t base_size, size_t ratio) {
  constexpr size_t kPairs = 512;
  const size_t large_size = base_size * ratio;
  // Universe 4x the large side: overlap is common but partial.
  const uint32_t universe = static_cast<uint32_t>(large_size * 4);
  Rng rng(base_size * 40503u + ratio * 2654435761u);
  PairPool pool;
  auto draw = [&](size_t n) {
    std::vector<uint32_t> vals = rng.SampleWithoutReplacement(
        universe, static_cast<uint32_t>(n));
    std::sort(vals.begin(), vals.end());
    return std::vector<TokenId>(vals.begin(), vals.end());
  };
  for (size_t p = 0; p < kPairs; ++p) {
    pool.small.push_back(draw(base_size));
    pool.large.push_back(draw(large_size));
    pool.thresholds.push_back(
        0.8 * MaxSimForSize(SimilarityMeasure::kJaccard, base_size,
                            large_size));
  }
  return pool;
}

void VerifyMergeAtLevel(benchmark::State& state, simd::Level level,
                        size_t base_size, size_t ratio) {
  PairPool pool = MakeDistinctPool(base_size, ratio);
  simd::SetLevelForTesting(level);
  for (auto _ : state) {
    size_t p = pool.next++ % pool.small.size();
    SetView a(pool.small[p].data(), pool.small[p].size());
    SetView b(pool.large[p].data(), pool.large[p].size());
    VerifyResult v = VerifyMerge(SimilarityMeasure::kJaccard, a, b,
                                 pool.thresholds[p]);
    benchmark::DoNotOptimize(v);
  }
  simd::ClearLevelForTesting();
  state.SetItemsProcessed(state.iterations());  // pairs/sec
}

/// Registered at runtime because the level list depends on the machine:
/// one row per (supported level x operand shape), named
/// BM_VerifyMergeLevel/<level>/base:<n>/ratio:<r>.
void RegisterLevelBenchmarks() {
  struct Shape {
    size_t base, ratio;
  };
  for (simd::Level level : simd::SupportedLevels()) {
    for (Shape shape : {Shape{64, 1}, Shape{256, 1}, Shape{64, 4},
                        Shape{16, 1}}) {
      std::string name = std::string("BM_VerifyMergeLevel/") +
                         simd::LevelName(level) +
                         "/base:" + std::to_string(shape.base) +
                         "/ratio:" + std::to_string(shape.ratio);
      benchmark::RegisterBenchmark(
          name.c_str(), [level, shape](benchmark::State& state) {
            VerifyMergeAtLevel(state, level, shape.base, shape.ratio);
          });
    }
  }
}

}  // namespace
}  // namespace les3

int main(int argc, char** argv) {
  les3::RegisterLevelBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
