// Shared helpers for the figure/table harnesses.
//
// Scale note: every bench runs on the scaled dataset analogs of
// datagen/analogs.h (the paper's datasets cannot be shipped) with query
// counts reduced from the paper's 10 k to keep the whole suite in the
// minutes range. EXPERIMENTS.md records the mapping.

#ifndef LES3_BENCH_BENCH_UTIL_H_
#define LES3_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "api/search_engine.h"
#include "core/database.h"
#include "datagen/generators.h"
#include "l2p/cascade.h"
#include "search/query_stats.h"
#include "util/csv.h"
#include "util/timer.h"

namespace les3 {
namespace bench {

/// Cascade options used across benches: the paper's network (2x8 sigmoid
/// MLP), batch 256, 3 epochs, Adam, sorted init into 128 groups;
/// pairs-per-model reduced to 20 k (the paper observes more samples do not
/// improve pruning, Section 7.1).
inline l2p::CascadeOptions BenchCascade(uint32_t target_groups) {
  l2p::CascadeOptions opts;
  opts.init_groups = 128;
  opts.target_groups = target_groups;
  opts.min_group_size = 50;
  opts.pairs_per_model = 20000;
  opts.siamese.epochs = 3;
  opts.siamese.batch_size = 256;
  opts.num_threads = 0;  // hardware concurrency
  opts.seed = 97;
  return opts;
}

/// Group-count heuristic. The paper's rule of thumb is n ≈ 0.5% |D|
/// (Section 7.5); on the scaled analogs the sweep of fig10 shows latency
/// still improving slightly past that point, so the benches use 1% |D|.
inline uint32_t DefaultGroups(size_t db_size) {
  uint32_t n = static_cast<uint32_t>(db_size / 100);
  return n < 16 ? 16 : n;
}

/// Aggregated timing over a query batch.
struct QueryAggregate {
  double avg_ms = 0.0;
  double avg_pe = 0.0;
  double avg_candidates = 0.0;
};

/// Runs `run(query)` for every query id and aggregates wall time and the
/// stats the run reports.
inline QueryAggregate RunQueries(
    const SetDatabase& db, const std::vector<SetId>& query_ids,
    const std::function<search::QueryStats(SetView)>& run) {
  QueryAggregate agg;
  if (query_ids.empty()) return agg;
  WallTimer timer;
  for (SetId qid : query_ids) {
    search::QueryStats stats = run(db.set(qid));
    agg.avg_pe += stats.pruning_efficiency;
    agg.avg_candidates += static_cast<double>(stats.candidates_verified);
  }
  double n = static_cast<double>(query_ids.size());
  agg.avg_ms = timer.Millis() / n;
  agg.avg_pe /= n;
  agg.avg_candidates /= n;
  return agg;
}

/// Throughput and latency distribution of one batch-query run; shared by
/// `les3_cli batch` and bench/shard_scaling.cc.
struct BatchLatency {
  size_t queries = 0;
  double wall_s = 0.0;   // end-to-end batch wall time
  double qps = 0.0;      // queries / wall_s
  double p50_ms = 0.0;   // per-query latency percentiles; on the sharded
  double p95_ms = 0.0;   // engine a query's latency is its slowest shard
  double p99_ms = 0.0;   // probe (the scatter-gather critical path)
};

/// Nearest-rank percentile over an ascending-sorted sample.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(std::ceil(p * sorted.size()));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// Summarizes a KnnBatch/RangeBatch run: QPS from the batch wall time,
/// percentiles from each query's own latency (QueryResult::TotalMs).
inline BatchLatency SummarizeBatch(const std::vector<api::QueryResult>& results,
                                   double wall_s) {
  BatchLatency summary;
  summary.queries = results.size();
  summary.wall_s = wall_s;
  if (results.empty()) return summary;
  summary.qps = wall_s > 0.0 ? results.size() / wall_s : 0.0;
  std::vector<double> ms;
  ms.reserve(results.size());
  for (const auto& r : results) ms.push_back(r.TotalMs());
  std::sort(ms.begin(), ms.end());
  summary.p50_ms = PercentileSorted(ms, 0.50);
  summary.p95_ms = PercentileSorted(ms, 0.95);
  summary.p99_ms = PercentileSorted(ms, 0.99);
  return summary;
}

/// Writes the CSV next to the binary's working directory and announces it.
inline void Emit(const TableReporter& table, const std::string& title,
                 const std::string& csv_name) {
  table.Print(title);
  Status st = table.WriteCsv(csv_name);
  if (st.ok()) {
    std::printf("  [csv] %s\n", csv_name.c_str());
  } else {
    std::printf("  [csv] failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace les3

#endif  // LES3_BENCH_BENCH_UTIL_H_
