// Shared helpers for the figure/table harnesses.
//
// Scale note: every bench runs on the scaled dataset analogs of
// datagen/analogs.h (the paper's datasets cannot be shipped) with query
// counts reduced from the paper's 10 k to keep the whole suite in the
// minutes range. EXPERIMENTS.md records the mapping.

#ifndef LES3_BENCH_BENCH_UTIL_H_
#define LES3_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/database.h"
#include "datagen/generators.h"
#include "l2p/cascade.h"
#include "search/query_stats.h"
#include "util/csv.h"
#include "util/timer.h"

namespace les3 {
namespace bench {

/// Cascade options used across benches: the paper's network (2x8 sigmoid
/// MLP), batch 256, 3 epochs, Adam, sorted init into 128 groups;
/// pairs-per-model reduced to 20 k (the paper observes more samples do not
/// improve pruning, Section 7.1).
inline l2p::CascadeOptions BenchCascade(uint32_t target_groups) {
  l2p::CascadeOptions opts;
  opts.init_groups = 128;
  opts.target_groups = target_groups;
  opts.min_group_size = 50;
  opts.pairs_per_model = 20000;
  opts.siamese.epochs = 3;
  opts.siamese.batch_size = 256;
  opts.num_threads = 0;  // hardware concurrency
  opts.seed = 97;
  return opts;
}

/// Group-count heuristic. The paper's rule of thumb is n ≈ 0.5% |D|
/// (Section 7.5); on the scaled analogs the sweep of fig10 shows latency
/// still improving slightly past that point, so the benches use 1% |D|.
inline uint32_t DefaultGroups(size_t db_size) {
  uint32_t n = static_cast<uint32_t>(db_size / 100);
  return n < 16 ? 16 : n;
}

/// Aggregated timing over a query batch.
struct QueryAggregate {
  double avg_ms = 0.0;
  double avg_pe = 0.0;
  double avg_candidates = 0.0;
};

/// Runs `run(query)` for every query id and aggregates wall time and the
/// stats the run reports.
inline QueryAggregate RunQueries(
    const SetDatabase& db, const std::vector<SetId>& query_ids,
    const std::function<search::QueryStats(const SetRecord&)>& run) {
  QueryAggregate agg;
  if (query_ids.empty()) return agg;
  WallTimer timer;
  for (SetId qid : query_ids) {
    search::QueryStats stats = run(db.set(qid));
    agg.avg_pe += stats.pruning_efficiency;
    agg.avg_candidates += static_cast<double>(stats.candidates_verified);
  }
  double n = static_cast<double>(query_ids.size());
  agg.avg_ms = timer.Millis() / n;
  agg.avg_pe /= n;
  agg.avg_candidates /= n;
  return agg;
}

/// Writes the CSV next to the binary's working directory and announces it.
inline void Emit(const TableReporter& table, const std::string& title,
                 const std::string& csv_name) {
  table.Print(title);
  Status st = table.WriteCsv(csv_name);
  if (st.ok()) {
    std::printf("  [csv] %s\n", csv_name.c_str());
  } else {
    std::printf("  [csv] failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace les3

#endif  // LES3_BENCH_BENCH_UTIL_H_
