// Shared helpers for the figure/table harnesses.
//
// Scale note: every bench runs on the scaled dataset analogs of
// datagen/analogs.h (the paper's datasets cannot be shipped) with query
// counts reduced from the paper's 10 k to keep the whole suite in the
// minutes range. EXPERIMENTS.md records the mapping.

#ifndef LES3_BENCH_BENCH_UTIL_H_
#define LES3_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "api/search_engine.h"
#include "core/database.h"
#include "datagen/generators.h"
#include "l2p/cascade.h"
#include "search/query_stats.h"
#include "util/csv.h"
#include "util/timer.h"

namespace les3 {
namespace bench {

/// Cascade options used across benches: the paper's network (2x8 sigmoid
/// MLP), batch 256, 3 epochs, Adam, sorted init into 128 groups;
/// pairs-per-model reduced to 20 k (the paper observes more samples do not
/// improve pruning, Section 7.1).
inline l2p::CascadeOptions BenchCascade(uint32_t target_groups) {
  l2p::CascadeOptions opts;
  opts.init_groups = 128;
  opts.target_groups = target_groups;
  opts.min_group_size = 50;
  opts.pairs_per_model = 20000;
  opts.siamese.epochs = 3;
  opts.siamese.batch_size = 256;
  opts.num_threads = 0;  // hardware concurrency
  opts.seed = 97;
  return opts;
}

/// Group-count heuristic. The paper's rule of thumb is n ≈ 0.5% |D|
/// (Section 7.5); on the scaled analogs the sweep of fig10 shows latency
/// still improving slightly past that point, so the benches use 1% |D|.
inline uint32_t DefaultGroups(size_t db_size) {
  uint32_t n = static_cast<uint32_t>(db_size / 100);
  return n < 16 ? 16 : n;
}

/// Aggregated timing over a query batch.
struct QueryAggregate {
  double avg_ms = 0.0;
  double avg_pe = 0.0;
  double avg_candidates = 0.0;
};

/// Runs `run(query)` for every query id and aggregates wall time and the
/// stats the run reports.
inline QueryAggregate RunQueries(
    const SetDatabase& db, const std::vector<SetId>& query_ids,
    const std::function<search::QueryStats(SetView)>& run) {
  QueryAggregate agg;
  if (query_ids.empty()) return agg;
  WallTimer timer;
  for (SetId qid : query_ids) {
    search::QueryStats stats = run(db.set(qid));
    agg.avg_pe += stats.pruning_efficiency;
    agg.avg_candidates += static_cast<double>(stats.candidates_verified);
  }
  double n = static_cast<double>(query_ids.size());
  agg.avg_ms = timer.Millis() / n;
  agg.avg_pe /= n;
  agg.avg_candidates /= n;
  return agg;
}

/// Throughput and latency distribution of one batch-query run; shared by
/// `les3_cli batch` and bench/shard_scaling.cc.
struct BatchLatency {
  size_t queries = 0;
  double wall_s = 0.0;   // end-to-end batch wall time
  double qps = 0.0;      // queries / wall_s; when the clock reports a zero
                         // wall time (sub-resolution runs), estimated from
                         // the per-query latency sum instead — never
                         // silently 0 for a run that answered queries
  double p50_ms = 0.0;   // per-query latency percentiles; on the sharded
  double p95_ms = 0.0;   // engine a query's latency is its slowest shard
  double p99_ms = 0.0;   // probe (the scatter-gather critical path)
};

/// Nearest-rank percentile over an ascending-sorted sample.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(std::ceil(p * sorted.size()));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// Summarizes raw per-query latencies (milliseconds, any order): QPS from
/// the run's wall time, percentiles from the samples. The latency core of
/// SummarizeBatch, shared with les3_loadgen whose samples are client-side
/// round-trip times rather than QueryResult timings.
inline BatchLatency SummarizeLatencies(std::vector<double> ms, double wall_s) {
  BatchLatency summary;
  summary.queries = ms.size();
  summary.wall_s = wall_s;
  if (ms.empty()) return summary;
  if (wall_s > 0.0) {  // NaN wall time also falls through to the fallback
    summary.qps = ms.size() / wall_s;
  } else {
    // A very fast run can complete inside one clock tick, leaving
    // wall_s == 0. Reporting qps = 0 for such a run inverts its meaning
    // (the fastest run would plot as the slowest), so fall back to the
    // serial-latency estimate: queries per summed per-query time. With a
    // zero latency sum as well, there is no timing signal at all and the
    // field stays 0.
    double sum_ms = 0.0;
    for (double m : ms) {
      if (std::isfinite(m) && m > 0.0) sum_ms += m;
    }
    if (sum_ms > 0.0) summary.qps = ms.size() / (sum_ms / 1000.0);
  }
  std::sort(ms.begin(), ms.end());
  summary.p50_ms = PercentileSorted(ms, 0.50);
  summary.p95_ms = PercentileSorted(ms, 0.95);
  summary.p99_ms = PercentileSorted(ms, 0.99);
  return summary;
}

/// Summarizes a KnnBatch/RangeBatch run: QPS from the batch wall time,
/// percentiles from each query's own latency (QueryResult::TotalMs).
inline BatchLatency SummarizeBatch(const std::vector<api::QueryResult>& results,
                                   double wall_s) {
  std::vector<double> ms;
  ms.reserve(results.size());
  for (const auto& r : results) ms.push_back(r.TotalMs());
  return SummarizeLatencies(std::move(ms), wall_s);
}

/// \brief One row of the shared batch-throughput JSON schema.
///
/// `les3_cli batch --json` and `les3_loadgen --json` (BENCH_serve.json)
/// both emit arrays of this shape, so in-process and over-the-wire runs
/// plot on one axis. Engine-side verification counters are only available
/// in-process (the wire protocol returns hits, not QueryStats); rows from
/// the load generator omit those keys.
struct BatchReport {
  std::string tool;   // "les3_cli_batch" | "les3_loadgen"
  std::string label;  // free-form run description
  std::string mode;   // "knn" | "range"
  double param = 0.0; // k or delta
  size_t clients = 1; // concurrent client threads driving the run
  BatchLatency latency;
  uint64_t hits_total = 0;
  uint64_t errors = 0;  // failed round trips (loadgen only)
  bool have_engine_stats = false;
  uint64_t candidates_verified = 0;
  uint64_t candidates_size_skipped = 0;
};

/// Renders one report as a JSON object (two-space indent, stable key
/// order — the schema shared by batch --json and BENCH_serve.json).
inline std::string BatchReportJson(const BatchReport& report) {
  std::ostringstream out;
  auto str = [](const std::string& s) {
    std::string escaped;
    for (char c : s) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    return '"' + escaped + '"';
  };
  char num[64];
  auto f = [&num](double v) {
    std::snprintf(num, sizeof(num), "%.6g", v);
    return std::string(num);
  };
  out << "  {\n";
  out << "    \"tool\": " << str(report.tool) << ",\n";
  out << "    \"label\": " << str(report.label) << ",\n";
  out << "    \"mode\": " << str(report.mode) << ",\n";
  out << "    \"param\": " << f(report.param) << ",\n";
  out << "    \"clients\": " << report.clients << ",\n";
  out << "    \"queries\": " << report.latency.queries << ",\n";
  out << "    \"wall_s\": " << f(report.latency.wall_s) << ",\n";
  out << "    \"qps\": " << f(report.latency.qps) << ",\n";
  out << "    \"p50_ms\": " << f(report.latency.p50_ms) << ",\n";
  out << "    \"p95_ms\": " << f(report.latency.p95_ms) << ",\n";
  out << "    \"p99_ms\": " << f(report.latency.p99_ms) << ",\n";
  out << "    \"hits_total\": " << report.hits_total << ",\n";
  out << "    \"errors\": " << report.errors;
  if (report.have_engine_stats) {
    out << ",\n";
    out << "    \"candidates_verified\": " << report.candidates_verified
        << ",\n";
    out << "    \"candidates_size_skipped\": "
        << report.candidates_size_skipped << "\n";
  } else {
    out << "\n";
  }
  out << "  }";
  return out.str();
}

/// Writes `reports` as a JSON array. With append == true and an existing
/// array at `path`, the new rows are spliced in before the closing
/// bracket (how the CI serve smoke accumulates BENCH_serve.json across
/// loadgen invocations).
inline Status WriteBatchReports(const std::vector<BatchReport>& reports,
                                const std::string& path, bool append = false) {
  std::string prefix = "[\n";
  if (append) {
    std::ifstream existing(path);
    if (existing) {
      std::ostringstream buf;
      buf << existing.rdbuf();
      std::string content = buf.str();
      size_t bracket = content.find_last_of(']');
      if (bracket == std::string::npos) {
        return Status::InvalidArgument(path + " is not a JSON array");
      }
      content.erase(bracket);
      while (!content.empty() &&
             (content.back() == '\n' || content.back() == ' ')) {
        content.pop_back();
      }
      // An empty existing array needs no separating comma.
      if (!content.empty()) {
        prefix = content + (content.back() == '[' ? "\n" : ",\n");
      }
    }
  }
  std::ostringstream out;
  out << prefix;
  for (size_t i = 0; i < reports.size(); ++i) {
    out << BatchReportJson(reports[i]);
    out << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IOError("cannot write " + path);
  file << out.str();
  return file ? Status::OK() : Status::IOError("short write to " + path);
}

/// Writes the CSV next to the binary's working directory and announces it.
inline void Emit(const TableReporter& table, const std::string& title,
                 const std::string& csv_name) {
  table.Print(title);
  Status st = table.WriteCsv(csv_name);
  if (st.ok()) {
    std::printf("  [csv] %s\n", csv_name.c_str());
  } else {
    std::printf("  [csv] failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace les3

#endif  // LES3_BENCH_BENCH_UTIL_H_
