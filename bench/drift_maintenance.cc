// Mutation drift and self-healing maintenance (docs/mutability.md).
//
// Starting from a Zipf corpus with an L2P partitioning, a churn phase
// deletes a third of the sets and streams in replacements drawn from a
// SHIFTED Zipf distribution (the hot tokens move half a universe over, a
// workload-drift analog). Deletes leave stale column bits; the shifted
// inserts pile onto whichever groups best match the new hot tokens. Both
// effects degrade pruning efficiency and QPS while answers stay exact.
//
// The bench measures the same fixed kNN workload in three states —
// baseline, drifted, healed (maintenance cycles run to convergence) —
// and reports PE, QPS, and latency per state, plus what the maintenance
// pass did. Expected shape: "healed" recovers most of the PE/QPS lost
// between "baseline" and "drifted".
//
// Output: an aligned table, drift_maintenance.csv, and (for the CI
// perf-smoke artifact) BENCH_mutability.json rows in the shared
// BatchReport schema (argv[1] overrides the JSON path).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/generators.h"
#include "l2p/l2p.h"
#include "search/les3_index.h"
#include "search/maintenance.h"

namespace les3 {
namespace {

struct PhaseStats {
  double pe = 0;          // mean kNN pruning efficiency
  bench::BatchLatency latency;
  uint64_t verified = 0;  // total candidates verified
  uint64_t hits = 0;
};

PhaseStats MeasurePhase(const search::Les3Index& index,
                        const std::vector<SetRecord>& queries, size_t k) {
  PhaseStats out;
  std::vector<double> ms;
  ms.reserve(queries.size());
  auto wall_start = std::chrono::steady_clock::now();
  for (const SetRecord& q : queries) {
    search::QueryStats stats;
    auto t0 = std::chrono::steady_clock::now();
    auto hits = index.Knn(q.view(), k, &stats);
    auto t1 = std::chrono::steady_clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    out.pe += stats.pruning_efficiency;
    out.verified += stats.candidates_verified;
    out.hits += hits.size();
  }
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  out.pe /= static_cast<double>(queries.size());
  out.latency = bench::SummarizeLatencies(std::move(ms), wall_s);
  return out;
}

bench::BatchReport MakeReport(const std::string& label,
                              const PhaseStats& stats, size_t k) {
  bench::BatchReport report;
  report.tool = "bench_drift_maintenance";
  report.label = label;
  report.mode = "knn";
  report.param = static_cast<double>(k);
  report.latency = stats.latency;
  report.hits_total = stats.hits;
  report.have_engine_stats = true;
  report.candidates_verified = stats.verified;
  return report;
}

}  // namespace
}  // namespace les3

int main(int argc, char** argv) {
  using namespace les3;
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_mutability.json";

  constexpr uint32_t kSets = 20000;
  constexpr uint32_t kTokens = 2000;
  constexpr size_t kQueries = 200;
  constexpr size_t kK = 10;

  datagen::ZipfOptions base_opts;
  base_opts.num_sets = kSets;
  base_opts.num_tokens = kTokens;
  base_opts.avg_set_size = 8;
  base_opts.zipf_exponent = 0.9;
  base_opts.seed = 3;
  SetDatabase base = datagen::GenerateZipf(base_opts);

  // The incoming (post-shift) population: same shape, hot tokens moved
  // half a universe over.
  datagen::ZipfOptions shifted_opts = base_opts;
  shifted_opts.seed = 4;
  SetDatabase incoming = datagen::GenerateZipf(shifted_opts);
  constexpr TokenId kShift = kTokens / 2;

  uint32_t groups = bench::DefaultGroups(kSets);
  l2p::L2PPartitioner l2p(bench::BenchCascade(groups));
  auto part = l2p.Partition(base, groups);
  search::Les3Index index(std::move(base), part.assignment, part.num_groups);

  // Fixed workload: the same queries probe all three states (sampled
  // before churn so none of them is a deleted id's view).
  std::vector<SetRecord> queries;
  for (SetId qid : datagen::SampleQueryIds(index.db(), kQueries, 7)) {
    queries.emplace_back(index.db().set(qid));
  }

  TableReporter table({"state", "pe", "qps", "p50_ms", "p95_ms", "live",
                       "groups", "dirt"});
  std::vector<bench::BatchReport> reports;
  auto record = [&](const std::string& state, const PhaseStats& stats) {
    table.Add(state, stats.pe, stats.latency.qps, stats.latency.p50_ms,
              stats.latency.p95_ms,
              static_cast<unsigned long long>(index.db().num_live()),
              index.tgm().num_groups(),
              static_cast<unsigned long long>(index.tgm().TotalDirt()));
    reports.push_back(MakeReport(state, stats, kK));
  };

  record("baseline", MeasurePhase(index, queries, kK));

  // Churn: delete a third of the original sets, update another sixth to
  // shifted content, insert a third's worth of shifted newcomers.
  size_t deletes = 0, updates = 0, inserts = 0;
  for (SetId id = 0; id < kSets; id += 3) {
    if (index.Delete(id)) ++deletes;
  }
  for (SetId id = 1; id < kSets; id += 6) {
    SetRecord moved(incoming.set(id));
    std::vector<TokenId> tokens = moved.tokens();
    for (TokenId& t : tokens) t = (t + kShift) % kTokens;
    if (index.Update(id, SetRecord::FromTokens(std::move(tokens)))) {
      ++updates;
    }
  }
  for (SetId id = 0; id < kSets / 3; ++id) {
    SetRecord fresh(incoming.set(kSets - 1 - id));
    std::vector<TokenId> tokens = fresh.tokens();
    for (TokenId& t : tokens) t = (t + kShift) % kTokens;
    index.Insert(SetRecord::FromTokens(std::move(tokens)));
    ++inserts;
  }
  std::printf("churn: %zu deletes, %zu updates, %zu inserts (%u -> %zu live)\n",
              deletes, updates, inserts, kSets, index.db().num_live());

  record("drifted", MeasurePhase(index, queries, kK));

  // Maintenance to convergence: bounded cycles, exactly what the
  // background thread would do across many wakes.
  search::MaintenanceOptions options;
  options.max_ops_per_cycle = 8;
  search::GroupActivity activity(index.tgm().num_groups());
  // Seed activity with the drifted workload so recomputes heal the
  // groups these queries actually touch first.
  for (const SetRecord& q : queries) {
    index.Knn(q.view(), kK, nullptr,
              [&](GroupId g, size_t c) { activity.Observe(g, c); });
  }
  auto heal_start = std::chrono::steady_clock::now();
  search::MaintenanceReport total;
  size_t cycles = 0;
  for (; cycles < 100000; ++cycles) {
    search::MaintenanceReport report =
        search::MaintainIndexOnce(&index, options, &activity);
    if (report.splits + report.recomputes == 0) break;
    total += report;
  }
  double heal_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - heal_start)
                      .count();
  std::printf(
      "maintenance: %zu cycles, %zu splits, %zu recomputes, %zu bits "
      "dropped, %.3f s\n",
      cycles, total.splits, total.recomputes, total.bits_dropped, heal_s);

  record("healed", MeasurePhase(index, queries, kK));

  bench::Emit(table, "Drift + self-healing maintenance (kNN, k=10)",
              "drift_maintenance.csv");
  Status st = bench::WriteBatchReports(reports, json_path);
  if (st.ok()) {
    std::printf("  [json] %s\n", json_path.c_str());
  } else {
    std::printf("  [json] failed: %s\n", st.ToString().c_str());
  }
  return 0;
}
