// Micro-benchmarks for the query-path hot spots: TGM upper-bound
// computation vs group count, PTR embedding throughput vs PCA/MDS, and
// exact verification.

#include <benchmark/benchmark.h>

#include "datagen/generators.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "embed/ptr.h"
#include "tgm/tgm.h"
#include "util/random.h"

namespace les3 {
namespace {

const SetDatabase& BenchDb() {
  datagen::ZipfOptions opts;
  opts.num_sets = 50000;
  opts.num_tokens = 20000;
  opts.avg_set_size = 10;
  opts.seed = 3;
  static SetDatabase db = datagen::GenerateZipf(opts);
  return db;
}

/// Dense regime: strong clustering + a fat Zipf head, so most head-token
/// columns cover nearly every group and run-encode after RunOptimize —
/// the corpus shape where the batched kernels shine.
const SetDatabase& DenseBenchDb() {
  datagen::ZipfOptions opts;
  opts.num_sets = 50000;
  opts.num_tokens = 5000;
  opts.avg_set_size = 10;
  opts.zipf_exponent = 1.1;
  opts.cluster_fraction = 0.7;
  opts.seed = 4;
  static SetDatabase db = datagen::GenerateZipf(opts);
  return db;
}

/// Args: (num_groups, corpus: 0 sparse Zipf | 1 dense clustered,
/// backend: 0 roaring | 1 bitvector). `kernel` selects the batched
/// AccumulateInto path vs the per-bit ForEach baseline it replaced.
void TgmMatchedCountsBench(benchmark::State& state, bool kernel) {
  const SetDatabase& db = state.range(1) == 0 ? BenchDb() : DenseBenchDb();
  uint32_t groups = static_cast<uint32_t>(state.range(0));
  auto backend = state.range(2) == 0 ? bitmap::BitmapBackend::kRoaring
                                     : bitmap::BitmapBackend::kBitVector;
  Rng rng(5);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(groups));
  tgm::Tgm index(db, assignment, groups, backend);
  index.RunOptimize();
  std::vector<uint32_t> counts;
  size_t q = 0;
  for (auto _ : state) {
    SetView query = db.set(q++ % db.size());
    benchmark::DoNotOptimize(
        kernel ? index.MatchedCounts(query, &counts)
               : index.MatchedCountsReference(query, &counts));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TgmMatchedCounts(benchmark::State& state) {
  TgmMatchedCountsBench(state, /*kernel=*/true);
}
void BM_TgmMatchedCountsForEach(benchmark::State& state) {
  TgmMatchedCountsBench(state, /*kernel=*/false);
}
BENCHMARK(BM_TgmMatchedCounts)
    ->ArgNames({"groups", "corpus", "backend"})
    ->Args({64, 0, 0})
    ->Args({256, 0, 0})
    ->Args({1024, 0, 0})
    ->Args({4096, 0, 0})
    ->Args({256, 1, 0})
    ->Args({1024, 1, 0})
    ->Args({256, 1, 1})
    ->Args({1024, 1, 1});
BENCHMARK(BM_TgmMatchedCountsForEach)
    ->ArgNames({"groups", "corpus", "backend"})
    ->Args({256, 0, 0})
    ->Args({1024, 0, 0})
    ->Args({4096, 0, 0})
    ->Args({256, 1, 0})
    ->Args({1024, 1, 0})
    ->Args({256, 1, 1})
    ->Args({1024, 1, 1});

void BM_PtrEmbed(benchmark::State& state) {
  const SetDatabase& db = BenchDb();
  embed::PtrRepresentation ptr(db.num_tokens());
  std::vector<float> out(ptr.dim());
  size_t i = 0;
  for (auto _ : state) {
    ptr.Embed(0, db.set(i++ % db.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtrEmbed);

void BM_PcaEmbed(benchmark::State& state) {
  const SetDatabase& db = BenchDb();
  embed::PcaOptions opts;
  opts.dim = 16;
  opts.power_iterations = 4;
  embed::PcaRepresentation pca(db, opts);
  std::vector<float> out(pca.dim());
  size_t i = 0;
  for (auto _ : state) {
    pca.Embed(0, db.set(i++ % db.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcaEmbed);

void BM_MdsEmbed(benchmark::State& state) {
  const SetDatabase& db = BenchDb();
  embed::MdsOptions opts;
  opts.dim = 16;
  opts.num_landmarks = 64;
  embed::MdsRepresentation mds(db, opts);
  std::vector<float> out(mds.dim());
  size_t i = 0;
  for (auto _ : state) {
    mds.Embed(0, db.set(i++ % db.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MdsEmbed);

void BM_ExactVerification(benchmark::State& state) {
  const SetDatabase& db = BenchDb();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Similarity(SimilarityMeasure::kJaccard,
                                        db.set(i % db.size()),
                                        db.set((i * 31 + 7) % db.size())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactVerification);

}  // namespace
}  // namespace les3

BENCHMARK_MAIN();
