// Micro-benchmarks for the query-path hot spots: TGM upper-bound
// computation vs group count, PTR embedding throughput vs PCA/MDS, and
// exact verification.

#include <benchmark/benchmark.h>

#include "datagen/generators.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "embed/ptr.h"
#include "tgm/tgm.h"
#include "util/random.h"

namespace les3 {
namespace {

SetDatabase BenchDb() {
  datagen::ZipfOptions opts;
  opts.num_sets = 50000;
  opts.num_tokens = 20000;
  opts.avg_set_size = 10;
  opts.seed = 3;
  static SetDatabase db = datagen::GenerateZipf(opts);
  return db;
}

void BM_TgmMatchedCounts(benchmark::State& state) {
  SetDatabase db = BenchDb();
  uint32_t groups = static_cast<uint32_t>(state.range(0));
  Rng rng(5);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(groups));
  tgm::Tgm index(db, assignment, groups);
  index.RunOptimize();
  std::vector<uint32_t> counts;
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.MatchedCounts(db.set(q++ % db.size()), &counts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TgmMatchedCounts)->Arg(64)->Arg(256)->Arg(1024);

void BM_PtrEmbed(benchmark::State& state) {
  SetDatabase db = BenchDb();
  embed::PtrRepresentation ptr(db.num_tokens());
  std::vector<float> out(ptr.dim());
  size_t i = 0;
  for (auto _ : state) {
    ptr.Embed(0, db.set(i++ % db.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtrEmbed);

void BM_PcaEmbed(benchmark::State& state) {
  SetDatabase db = BenchDb();
  embed::PcaOptions opts;
  opts.dim = 16;
  opts.power_iterations = 4;
  embed::PcaRepresentation pca(db, opts);
  std::vector<float> out(pca.dim());
  size_t i = 0;
  for (auto _ : state) {
    pca.Embed(0, db.set(i++ % db.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcaEmbed);

void BM_MdsEmbed(benchmark::State& state) {
  SetDatabase db = BenchDb();
  embed::MdsOptions opts;
  opts.dim = 16;
  opts.num_landmarks = 64;
  embed::MdsRepresentation mds(db, opts);
  std::vector<float> out(mds.dim());
  size_t i = 0;
  for (auto _ : state) {
    mds.Embed(0, db.set(i++ % db.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MdsEmbed);

void BM_ExactVerification(benchmark::State& state) {
  SetDatabase db = BenchDb();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Similarity(SimilarityMeasure::kJaccard,
                                        db.set(i % db.size()),
                                        db.set((i * 31 + 7) % db.size())));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactVerification);

}  // namespace
}  // namespace les3

BENCHMARK_MAIN();
