// Figure 10 — sensitivity to the number of groups n and the result size k.
//
// One cascade is trained to the largest n; every level snapshot yields a
// TGM with a different group count, and each is queried with k in
// {1, 10, 50, 100}.
//
// Expected shape (paper): latency falls as n grows, then flattens
// (diminishing returns; best n ≈ 0.5% |D|), and grows with k.

#include <cstdio>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "embed/ptr.h"
#include "l2p/cascade.h"
#include "search/les3_index.h"

int main() {
  using namespace les3;
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  SetDatabase db = datagen::GenerateAnalog(spec, 3);  // full analog (99 k)
  auto query_ids = datagen::SampleQueryIds(db, 200, 5);

  embed::PtrRepresentation ptr(db.num_tokens());
  l2p::CascadeOptions opts = bench::BenchCascade(2048);
  WallTimer train_timer;
  l2p::CascadeResult cascade = TrainCascade(db, ptr, opts);
  std::printf("cascade trained to %u groups in %.1fs (%llu models)\n",
              cascade.levels.back().num_groups, train_timer.Seconds(),
              static_cast<unsigned long long>(cascade.models_trained));

  TableReporter table({"groups", "k", "knn_ms", "pe", "candidates"});
  for (const auto& level : cascade.levels) {
    search::Les3Index index(db, level.assignment, level.num_groups);
    for (size_t k : {1u, 10u, 50u, 100u}) {
      auto agg = bench::RunQueries(db, query_ids, [&](SetView q) {
        search::QueryStats s;
        index.Knn(q, k, &s);
        return s;
      });
      table.Add(level.num_groups, static_cast<unsigned long long>(k),
                agg.avg_ms, agg.avg_pe, agg.avg_candidates);
    }
    std::printf("n=%u done\n", level.num_groups);
  }
  bench::Emit(table, "Figure 10: sensitivity to #groups and k (KOSARAK)",
              "fig10_sensitivity.csv");
  return 0;
}
