// Figure 7 — model convergence and training cost.
//
// (a) Training-loss curve of one first-level Siamese model per dataset
//     analog (paper: loss converges after ~2 epochs). We train with the
//     paper's full 40 k pairs for this figure.
// (b) Cascade training cost as the number of groups grows (paper: linear).

#include <cstdio>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "embed/ptr.h"
#include "l2p/cascade.h"
#include "partition/partitioner.h"
#include "partition/sorted_init.h"

namespace les3 {
namespace {

void LearningCurves() {
  TableReporter table({"dataset", "epoch", "batch", "loss"});
  for (const auto& spec : datagen::MemoryAnalogSpecs()) {
    // A level-0 model trains on one of the 128 sorted-init groups; sample
    // the analog down so each group is representative yet fast.
    SetDatabase db = datagen::GenerateAnalogSample(spec, 40000, 7);
    auto init = partition::SortedInitialization(db, 128);
    auto groups = partition::GroupMembers(init, 128);
    embed::PtrRepresentation ptr(db.num_tokens());
    ml::Matrix reps = embed::EmbedDatabase(ptr, db);
    // Random level-0 model = model of group 0 (groups are homogeneous by
    // construction of the sorted initialization).
    const auto& members = groups[0];
    Rng rng(11);
    std::vector<ml::SiamesePair> pairs;
    const size_t kPairs = 40000;  // paper Section 7.1
    for (size_t i = 0; i < kPairs; ++i) {
      size_t a = rng.Uniform(members.size());
      size_t b = rng.Uniform(members.size() - 1);
      if (b >= a) ++b;
      float dissim = static_cast<float>(
          1.0 - Similarity(SimilarityMeasure::kJaccard, db.set(members[a]),
                           db.set(members[b])));
      pairs.push_back({members[a], members[b], dissim});
    }
    ml::Mlp net({ptr.dim(), 8, 8, 1}, 13);
    ml::SiameseOptions sopts;
    sopts.epochs = 4;  // one extra epoch to show the post-convergence tail
    sopts.batch_size = 256;
    ml::SiameseStats stats = TrainSiamese(&net, reps, pairs, sopts);
    size_t batches_per_epoch = (kPairs + 255) / 256;
    for (size_t i = 0; i < stats.batch_losses.size(); i += 16) {
      table.Add(spec.name,
                static_cast<unsigned long long>(i / batches_per_epoch),
                static_cast<unsigned long long>(i), stats.batch_losses[i]);
    }
    std::printf("%s: trained one level-0 model in %.2fs (%zu batches)\n",
                spec.name.c_str(), stats.train_seconds,
                stats.batch_losses.size());
  }
  bench::Emit(table, "Figure 7(a): training loss curves",
              "fig7a_training_loss.csv");
}

void TrainingCost() {
  TableReporter table({"groups", "train_s", "models"});
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  SetDatabase db = datagen::GenerateAnalogSample(spec, 40000, 9);
  embed::PtrRepresentation ptr(db.num_tokens());
  // One cascade to the largest target; each level snapshot corresponds to
  // one group count (cost to level L = cumulative cost, which is what the
  // paper plots).
  l2p::CascadeOptions opts = bench::BenchCascade(1024);
  opts.min_group_size = 20;  // 40 k sets / 1024 groups ≈ 39 sets
  WallTimer timer;
  l2p::CascadeResult cascade = TrainCascade(db, ptr, opts);
  double total = timer.Seconds();
  // Models are split evenly across levels in cost; reconstruct cumulative
  // cost per level from model counts (models at level l ≈ groups added).
  uint64_t total_models = cascade.models_trained;
  uint64_t seen_models = 0;
  for (size_t l = 1; l < cascade.levels.size(); ++l) {
    uint64_t level_models = cascade.levels[l].num_groups -
                            cascade.levels[l - 1].num_groups;
    seen_models += level_models;
    double cost = total * static_cast<double>(seen_models) /
                  static_cast<double>(total_models ? total_models : 1);
    table.Add(cascade.levels[l].num_groups, cost,
              static_cast<unsigned long long>(seen_models));
  }
  bench::Emit(table, "Figure 7(b): training cost vs number of groups",
              "fig7b_training_cost.csv");
}

}  // namespace
}  // namespace les3

int main() {
  les3::LearningCurves();
  les3::TrainingCost();
  return 0;
}
