// Figure 12 — memory-based comparison against the baselines, through the
// unified SearchEngine API: every method is built by EngineBuilder over
// one shared database and queried identically.
//
// For each memory analog: range queries over δ in {0.5..0.9} and kNN over
// k in {1, 10, 50, 100}, for LES3, DualTrans, InvIdx, and brute force.
//
// Expected shape (paper): LES3 wins overall (2-20x); InvIdx is competitive
// only at large δ and degrades on kNN / large-set datasets; brute force
// overtakes the heavy indexes at low δ / large k.

#include <cstdio>
#include <memory>

#include "api/engine_builder.h"
#include "bench_util.h"
#include "datagen/analogs.h"

int main() {
  using namespace les3;
  TableReporter range_table({"dataset", "method", "delta", "ms", "pe"});
  TableReporter knn_table({"dataset", "method", "k", "ms", "pe"});
  const std::vector<double> deltas{0.5, 0.6, 0.7, 0.8, 0.9};
  const std::vector<size_t> ks{1, 10, 50, 100};
  // Display label -> EngineBuilder backend name.
  const std::vector<std::pair<const char*, const char*>> methods{
      {"LES3", "les3"},
      {"DualTrans", "dualtrans"},
      {"InvIdx", "invidx"},
      {"BruteForce", "brute_force"},
  };

  for (const auto& spec : datagen::MemoryAnalogSpecs()) {
    auto db = std::make_shared<SetDatabase>(datagen::GenerateAnalog(spec, 3));
    auto query_ids = datagen::SampleQueryIds(*db, 100, 5);
    uint32_t groups = bench::DefaultGroups(db->size());

    api::EngineOptions options;
    options.num_groups = groups;
    options.cascade = bench::BenchCascade(groups);
    std::printf("%s: building engines\n", spec.name.c_str());

    for (const auto& [label, backend] : methods) {
      auto engine =
          api::EngineBuilder::Build(db, backend, options).ValueOrDie();
      for (double delta : deltas) {
        auto agg = bench::RunQueries(*db, query_ids, [&](SetView q) {
          return engine->Range(q, delta).stats;
        });
        range_table.Add(spec.name, label, delta, agg.avg_ms, agg.avg_pe);
      }
      for (size_t k : ks) {
        auto agg = bench::RunQueries(*db, query_ids, [&](SetView q) {
          return engine->Knn(q, k).stats;
        });
        knn_table.Add(spec.name, label, static_cast<unsigned long long>(k),
                      agg.avg_ms, agg.avg_pe);
      }
      std::printf("  %s done\n", label);
    }
  }
  bench::Emit(range_table, "Figure 12 (left): memory-based range queries",
              "fig12_range.csv");
  bench::Emit(knn_table, "Figure 12 (right): memory-based kNN queries",
              "fig12_knn.csv");
  return 0;
}
