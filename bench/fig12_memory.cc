// Figure 12 — memory-based comparison against the baselines.
//
// For each memory analog: range queries over δ in {0.5..0.9} and kNN over
// k in {1, 10, 50, 100}, for LES3, DualTrans, InvIdx, and brute force.
//
// Expected shape (paper): LES3 wins overall (2-20x); InvIdx is competitive
// only at large δ and degrades on kNN / large-set datasets; brute force
// overtakes the heavy indexes at low δ / large k.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "datagen/analogs.h"
#include "l2p/l2p.h"
#include "search/les3_index.h"

int main() {
  using namespace les3;
  TableReporter range_table({"dataset", "method", "delta", "ms", "pe"});
  TableReporter knn_table({"dataset", "method", "k", "ms", "pe"});
  const std::vector<double> deltas{0.5, 0.6, 0.7, 0.8, 0.9};
  const std::vector<size_t> ks{1, 10, 50, 100};

  for (const auto& spec : datagen::MemoryAnalogSpecs()) {
    SetDatabase db = datagen::GenerateAnalog(spec, 3);
    auto query_ids = datagen::SampleQueryIds(db, 100, 5);
    uint32_t groups = bench::DefaultGroups(db.size());

    l2p::L2PPartitioner l2p(bench::BenchCascade(groups));
    auto part = l2p.Partition(db, groups);
    search::Les3Index les3_index(db, part.assignment, part.num_groups);
    baselines::DualTrans dualtrans(&db);
    baselines::InvIdx invidx(&db);
    baselines::BruteForce brute(&db);
    std::printf("%s: indexes built\n", spec.name.c_str());

    using RangeFn =
        std::function<search::QueryStats(const SetRecord&, double)>;
    using KnnFn = std::function<search::QueryStats(const SetRecord&, size_t)>;
    struct Method {
      const char* name;
      RangeFn range;
      KnnFn knn;
    };
    std::vector<Method> methods{
        {"LES3",
         [&](const SetRecord& q, double d) {
           search::QueryStats s;
           les3_index.Range(q, d, &s);
           return s;
         },
         [&](const SetRecord& q, size_t k) {
           search::QueryStats s;
           les3_index.Knn(q, k, &s);
           return s;
         }},
        {"DualTrans",
         [&](const SetRecord& q, double d) {
           search::QueryStats s;
           dualtrans.Range(q, d, &s);
           return s;
         },
         [&](const SetRecord& q, size_t k) {
           search::QueryStats s;
           dualtrans.Knn(q, k, &s);
           return s;
         }},
        {"InvIdx",
         [&](const SetRecord& q, double d) {
           search::QueryStats s;
           invidx.Range(q, d, &s);
           return s;
         },
         [&](const SetRecord& q, size_t k) {
           search::QueryStats s;
           invidx.Knn(q, k, &s);
           return s;
         }},
        {"BruteForce",
         [&](const SetRecord& q, double d) {
           search::QueryStats s;
           brute.Range(q, d, &s);
           return s;
         },
         [&](const SetRecord& q, size_t k) {
           search::QueryStats s;
           brute.Knn(q, k, &s);
           return s;
         }},
    };

    for (const auto& method : methods) {
      for (double delta : deltas) {
        auto agg = bench::RunQueries(db, query_ids, [&](const SetRecord& q) {
          return method.range(q, delta);
        });
        range_table.Add(spec.name, method.name, delta, agg.avg_ms,
                        agg.avg_pe);
      }
      for (size_t k : ks) {
        auto agg = bench::RunQueries(db, query_ids, [&](const SetRecord& q) {
          return method.knn(q, k);
        });
        knn_table.Add(spec.name, method.name,
                      static_cast<unsigned long long>(k), agg.avg_ms,
                      agg.avg_pe);
      }
      std::printf("  %s done\n", method.name);
    }
  }
  bench::Emit(range_table, "Figure 12 (left): memory-based range queries",
              "fig12_range.csv");
  bench::Emit(knn_table, "Figure 12 (right): memory-based kNN queries",
              "fig12_knn.csv");
  return 0;
}
