// Figure 15 — handling updates.
//
// Starting from a KOSARAK analog, insert batches of new sets through the
// Section 6 update path under (1) a closed universe (tokens drawn from the
// original universe) and (2) an open universe (half the tokens previously
// unseen). After each batch, the kNN pruning efficiency is compared against
// a from-scratch L2P rebuild on the union.
//
// Expected shape (paper): PE degrades gently with insert ratio (<= 8%),
// open universe slightly worse than closed.

#include <cstdio>

#include "bench_util.h"
#include "datagen/analogs.h"
#include "l2p/l2p.h"
#include "search/les3_index.h"

namespace les3 {
namespace {

double AveragePe(const search::Les3Index& index, const SetDatabase& db,
                 const std::vector<SetId>& query_ids) {
  double pe = 0;
  for (SetId qid : query_ids) {
    search::QueryStats stats;
    index.Knn(db.set(qid), 10, &stats);
    pe += stats.pruning_efficiency;
  }
  return pe / static_cast<double>(query_ids.size());
}

}  // namespace
}  // namespace les3

int main() {
  using namespace les3;
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  const uint32_t kBase = 40000;
  SetDatabase base = datagen::GenerateAnalogSample(spec, kBase, 3);
  uint32_t groups = bench::DefaultGroups(kBase);

  TableReporter table(
      {"universe", "insert_ratio", "pe_updated", "pe_rebuild",
       "pe_drop_pct"});

  for (bool open_universe : {false, true}) {
    // New sets: same generator, fresh seed; in the open-universe case half
    // of each set's tokens are shifted past the original universe.
    SetDatabase incoming = datagen::GenerateAnalogSample(spec, kBase, 101);
    const char* label = open_universe ? "open" : "closed";

    // One base partitioning serves every insert ratio.
    l2p::L2PPartitioner l2p(bench::BenchCascade(groups));
    auto part = l2p.Partition(base, groups);
    for (double ratio : {0.5, 1.0}) {
      size_t insert_count = static_cast<size_t>(ratio * kBase);
      // Updated index: copy the base partitioning, then stream inserts.
      search::Les3Index updated(base, part.assignment, part.num_groups);
      SetDatabase unioned = base;
      for (size_t i = 0; i < insert_count; ++i) {
        SetRecord s(incoming.set(static_cast<SetId>(i)));
        if (open_universe) {
          // Make half the tokens previously unseen (paper protocol).
          std::vector<TokenId> tokens = s.tokens();
          for (size_t t = 0; t < tokens.size(); t += 2) {
            tokens[t] += spec.num_tokens;  // outside the original universe
          }
          s = SetRecord::FromTokens(std::move(tokens));
        }
        updated.Insert(s);
        unioned.AddSet(s);
      }
      // Rebuild from scratch on the union.
      l2p::L2PPartitioner l2p2(bench::BenchCascade(groups));
      auto part2 = l2p2.Partition(unioned, groups);
      search::Les3Index rebuilt(unioned, part2.assignment,
                                part2.num_groups);

      auto query_ids = datagen::SampleQueryIds(unioned, 100, 7);
      double pe_updated = AveragePe(updated, unioned, query_ids);
      double pe_rebuilt = AveragePe(rebuilt, unioned, query_ids);
      double drop_pct = (pe_rebuilt - pe_updated) / pe_rebuilt * 100.0;
      table.Add(label, ratio, pe_updated, pe_rebuilt, drop_pct);
      std::printf("%s ratio %.2f: pe %.4f vs rebuild %.4f (drop %.2f%%)\n",
                  label, ratio, pe_updated, pe_rebuilt, drop_pct);
    }
  }
  bench::Emit(table, "Figure 15: pruning efficiency under updates",
              "fig15_updates.csv");
  return 0;
}
